//===- lint/Lint.h - Transaction-safety analysis driver ------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stm_lint analysis pipeline (see DESIGN.md §4e):
///
///   1. lex + structurally parse every source file (lint/Lexer.h,
///      lint/Parser.h);
///   2. scan every function body for would-be violations and call sites
///      (lint/Rules.h); transaction bodies (run-lambdas and functions
///      taking a txn handle) report violations directly;
///   3. propagate "transaction-unsafe" over the call graph to a fixpoint,
///      so a body calling a helper that (transitively) allocates or does
///      I/O is flagged at the call site (R5);
///   4. run the memory-ordering discipline pass (lint/OrderRules.h) over
///      every function body against the file set's `stm-order:`
///      contracts (O1–O3);
///   5. apply `// stm-lint: allow(<rule>) <reason>` suppressions (same
///      line, or a comment block directly above the flagged line — the
///      rationale may wrap; a missing reason is itself S1).
///
/// Also implements the fixture self-check mode: `// expect-diag(<rule>)`
/// annotations must match produced diagnostics exactly, line by line —
/// plus SARIF 2.1 rendering and the CI baseline (known findings are
/// waived by (rule, file, message) so new findings still fail).
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_LINT_LINT_H
#define GSTM_LINT_LINT_H

#include "lint/Rules.h"

#include <string>
#include <vector>

namespace gstm::lint {

/// One source file handed to the analysis. Text must stay alive for the
/// duration of the lint (tokens view into it); lintSources owns its copy.
struct SourceFile {
  std::string Path;
  std::string Text;
};

/// A reported diagnostic.
struct Diag {
  std::string File;
  uint32_t Line = 0;
  Rule R = Rule::NakedAccess;
  std::string Message;
};

struct LintStats {
  size_t Files = 0;
  size_t Functions = 0;
  size_t Regions = 0;        ///< transaction bodies analyzed
  size_t Suppressed = 0;     ///< diagnostics silenced by allow() comments
  size_t AtomicOps = 0;      ///< atomic loads/stores/RMWs inventoried
  size_t Fences = 0;         ///< atomic_thread_fence calls inventoried
  size_t OrderContracts = 0; ///< stm-order contracts parsed
  size_t BaselineWaived = 0; ///< diagnostics matched by the baseline
};

struct LintResult {
  std::vector<Diag> Diags; ///< sorted by (file, line, rule)
  LintStats Stats;

  bool clean() const { return Diags.empty(); }
};

/// Runs the full pipeline over \p Files (one shared call graph).
LintResult lintSources(const std::vector<SourceFile> &Files);

/// Collects lintable sources (.h/.hpp/.cpp/.cc) under each of \p Paths
/// (files or directories, resolved against \p Root when relative).
/// Directories named "build*", hidden directories, and the lint fixture
/// corpus are skipped. Returns false (with \p Error set) when a path
/// does not exist or a file cannot be read.
bool collectSources(const std::string &Root,
                    const std::vector<std::string> &Paths,
                    std::vector<SourceFile> &Out, std::string &Error);

/// Renders diagnostics as "file:line: [Rx] message" lines plus a summary.
std::string toText(const LintResult &R);

/// Renders the result as a JSON document (support/Json.h writer).
std::string toJson(const LintResult &R);

/// Renders the result as a SARIF 2.1.0 log (one run, full rule table,
/// one result per diagnostic) for CI upload.
std::string toSarif(const LintResult &R);

/// One accepted legacy finding. Baselines match by (rule, file, message)
/// and deliberately ignore line numbers, so unrelated edits shifting a
/// waived finding do not resurrect it.
struct BaselineEntry {
  std::string RuleId;
  std::string File;
  std::string Message;
};

struct Baseline {
  std::vector<BaselineEntry> Entries;
};

/// Parses the tab-separated baseline format written by baselineText().
/// Unparseable lines are ignored (comments start with '#').
Baseline parseBaseline(std::string_view Text);

/// Serializes the result's diagnostics as a baseline file.
std::string baselineText(const LintResult &R);

/// Removes from \p R every diagnostic matched by \p B (each entry waives
/// at most one diagnostic), counting them in Stats.BaselineWaived.
/// Entries that matched nothing — stale waivers — are appended to
/// \p Stale.
void applyBaseline(LintResult &R, const Baseline &B,
                   std::vector<BaselineEntry> &Stale);

/// Fixture self-check: every `// expect-diag(<rule>)` annotation in
/// \p Files must be matched by a diagnostic on the same line, and every
/// diagnostic must be annotated. Each file is linted in isolation so
/// fixtures cannot contaminate each other's call graphs.
struct ExpectOutcome {
  size_t Expected = 0;
  size_t Matched = 0;
  std::vector<std::string> Failures; ///< human-readable mismatch lines

  bool ok() const { return Failures.empty(); }
};
ExpectOutcome checkExpectations(const std::vector<SourceFile> &Files);

} // namespace gstm::lint

#endif // GSTM_LINT_LINT_H
