//===- lint/OrderRules.h - Memory-ordering discipline pass ---------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-ordering discipline pass (DESIGN.md §4e): inventories every
/// std::atomic load/store/RMW and every atomic_thread_fence in the
/// scanned sources and checks them against lightweight protocol contracts
/// declared as comments at the declaration sites:
///
///   // stm-order: publish(NAME) requires release-fence-before
///       O1: a relaxed store whose receiver chain names NAME must be
///       dominated by a release (or stronger) fence on its path — the
///       single-fence commit publication idiom. Release/seq_cst stores
///       satisfy the contract on their own.
///
///   // stm-order: pair(NAME) acquire-load release-store
///       O2: loads of NAME must be acquire or stronger; stores must be
///       release or stronger (or relaxed behind a dominating release
///       fence, the fence-publication form).
///
///   // stm-order: fence(seq_cst) before(CALLEE) label(TEXT)
///       O3: inside the function containing the contract comment, the
///       next call to CALLEE after the comment must be dominated by a
///       seq_cst atomic_thread_fence issued at or after the contract
///       line. This pins the store-buffering fix from the single-fence
///       commit paths (commit 5343567): deleting the fence — or
///       weakening it — re-opens the two-committers-miss-each-other's-
///       locks window, and the contract comment that survives the
///       deletion flags it. A contract that binds no call is itself a
///       violation (the annotation drifted from the code).
///
/// publish()/pair() names are matched against the *receiver chain* of an
/// atomic operation — the identifiers reachable by walking the postfix
/// expression left of `.load(...)` / `.store(...)` (`S.lockTable()
/// .stripeAt(I).store(..)` has chain {stripeAt, lockTable, S}) — and are
/// global across the scanned file set, so a contract declared at
/// `LockTable::stripeAt` covers publishes in Tl2.cpp and OrecEager.h.
///
/// Domination is lexical: a stack of per-brace-depth fence states, so a
/// fence inside an `if` branch does not dominate code after the branch,
/// while a fence before a nested loop dominates the loop body. Compare-
/// exchange and fetch-op RMWs are inventoried but not checked (their
/// default seq_cst success order and CAS-retry shapes make relaxed forms
/// deliberate, reviewed choices). Lambda bodies inherit the enclosing
/// fence state — acceptable for this codebase, where commit-path fences
/// and publishes never straddle a lambda boundary.
///
/// Violations feed the same suppression (`// stm-lint: allow(O1) why`),
/// baseline, and SARIF machinery as R1–R6.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_LINT_ORDERRULES_H
#define GSTM_LINT_ORDERRULES_H

#include "lint/Rules.h"

#include <string>
#include <vector>

namespace gstm::lint {

/// Name-keyed contracts, global across the scanned file set.
struct OrderContracts {
  std::vector<std::string> Publish; ///< publish(NAME) → O1
  std::vector<std::string> Pair;    ///< pair(NAME) → O2
};

/// One fence(seq_cst) before(CALLEE) label(TEXT) contract, local to the
/// function body containing its comment.
struct FenceContract {
  uint32_t Line = 0;    ///< line of the stm-order comment
  std::string Callee;   ///< anchor: next call to this name binds
  std::string Label;    ///< protocol path name, quoted in diagnostics
  bool Bound = false;   ///< set once an anchor call has been checked
};

struct OrderStats {
  size_t AtomicOps = 0;  ///< loads + stores + RMWs seen
  size_t Fences = 0;     ///< atomic_thread_fence calls seen
  size_t Contracts = 0;  ///< stm-order contracts parsed
};

/// Parses every `stm-order:` comment of \p TS into \p Global
/// (publish/pair names) and \p Fences (fence contracts, to be bound
/// against the file's function bodies).
void parseOrderContracts(const TokenStream &TS, OrderContracts &Global,
                         std::vector<FenceContract> &Fences);

/// Walks tokens [Begin, End) — one function body — checking O1/O2
/// against \p Contracts and binding/checking any of \p Fences whose
/// contract line falls inside the body. Appends violations to \p Out
/// and inventory counts to \p Stats.
void checkOrder(const std::vector<Token> &Tokens, size_t Begin, size_t End,
                const OrderContracts &Contracts,
                std::vector<FenceContract> &Fences, OrderStats &Stats,
                std::vector<RawViolation> &Out);

} // namespace gstm::lint

#endif // GSTM_LINT_ORDERRULES_H
