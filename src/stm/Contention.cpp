//===- stm/Contention.cpp ---------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stm/Contention.h"

#include <algorithm>

using namespace gstm;

uint64_t PoliteManager::onAbort(ThreadId Thread, TxThreadPair Enemy,
                                bool EnemyKnown, uint32_t Attempts,
                                uint64_t Opens) {
  (void)Thread;
  (void)Enemy;
  (void)EnemyKnown;
  (void)Opens;
  // Randomized exponential backoff, capped at ~0.1 ms.
  uint64_t Salted =
      Salt.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed);
  Salted ^= Salted >> 29;
  unsigned Shift = std::min(Attempts, 10u);
  uint64_t Window = uint64_t{100} << Shift; // ns
  return Salted % std::min<uint64_t>(Window, 100000);
}

KarmaManager::KarmaManager()
    : KarmaStore(new std::atomic<uint64_t>[MaxThreads]),
      Karma(KarmaStore.get()) {
  for (unsigned I = 0; I < MaxThreads; ++I)
    Karma[I].store(0, std::memory_order_relaxed);
}

uint64_t KarmaManager::onAbort(ThreadId Thread, TxThreadPair Enemy,
                               bool EnemyKnown, uint32_t Attempts,
                               uint64_t Opens) {
  (void)Attempts;
  // Work invested persists across retries so a repeatedly aborted
  // transaction eventually outranks its enemies.
  uint64_t Mine = Karma[Thread % MaxThreads].fetch_add(
                      Opens, std::memory_order_relaxed) +
                  Opens;
  if (!EnemyKnown)
    return 0;
  uint64_t Theirs =
      Karma[pairThread(Enemy) % MaxThreads].load(std::memory_order_relaxed);
  if (Mine >= Theirs)
    return 0;
  // Back off proportionally to the karma gap, capped at ~50 us.
  return std::min<uint64_t>((Theirs - Mine) * 25, 50000);
}

void KarmaManager::onCommit(ThreadId Thread, uint64_t Opens) {
  (void)Opens;
  Karma[Thread % MaxThreads].store(0, std::memory_order_relaxed);
}

GreedyManager::GreedyManager()
    : StartStore(new std::atomic<uint64_t>[MaxThreads]),
      Start(StartStore.get()) {
  for (unsigned I = 0; I < MaxThreads; ++I)
    Start[I].store(~uint64_t{0}, std::memory_order_relaxed);
}

void GreedyManager::onTxBegin(ThreadId Thread) {
  // Timestamps survive retries (assigned per transaction, not per
  // attempt), which is what gives Greedy its starvation freedom.
  Start[Thread % MaxThreads].store(
      Ticket.fetch_add(1, std::memory_order_relaxed),
      std::memory_order_relaxed);
}

uint64_t GreedyManager::onAbort(ThreadId Thread, TxThreadPair Enemy,
                                bool EnemyKnown, uint32_t Attempts,
                                uint64_t Opens) {
  (void)Opens;
  if (!EnemyKnown)
    return 0;
  uint64_t Mine = Start[Thread % MaxThreads].load(std::memory_order_relaxed);
  uint64_t Theirs =
      Start[pairThread(Enemy) % MaxThreads].load(std::memory_order_relaxed);
  if (Mine <= Theirs)
    return 0; // I am older: press on
  // Younger transaction defers; scale with retries, capped at ~50 us.
  return std::min<uint64_t>(uint64_t{500} * (Attempts + 1), 50000);
}

std::unique_ptr<ContentionManager>
gstm::createContentionManager(const std::string &Name) {
  if (Name == "polite")
    return std::make_unique<PoliteManager>();
  if (Name == "karma")
    return std::make_unique<KarmaManager>();
  if (Name == "greedy")
    return std::make_unique<GreedyManager>();
  return nullptr;
}
