//===- stm/Contention.h - Contention managers (baselines) ----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contention managers the paper positions itself against (Sec. IX):
/// Polite (Herlihy et al., PODC'03) backs a conflicting thread off
/// exponentially; Karma (Scherer & Scott, PODC'05) prioritizes the
/// transaction that has opened more objects; Greedy (Guerraoui et al.,
/// PODC'05) favours the earliest start time. CMs aim at *throughput* by
/// deciding who yields on a conflict — the paper's argument is that they
/// "clearly compromise one thread over another which only leads to higher
/// variance", unlike guided execution. These implementations exist as
/// baselines for that comparison (bench/ablation_contention).
///
/// Adaptation note: this STM resolves conflicts by self-abort (the victim
/// detects staleness and retries), so the managers steer the *retry
/// delay* rather than killing enemies — the standard formulation for
/// lazy-validation TMs. Priorities follow the original papers.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STM_CONTENTION_H
#define GSTM_STM_CONTENTION_H

#include "support/Ids.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace gstm {

/// Decides how an aborted transaction backs off before retrying.
/// Implementations must be thread-safe; one instance serves all workers
/// of a runtime.
class ContentionManager {
public:
  virtual ~ContentionManager() = default;

  virtual std::string name() const = 0;

  /// A fresh transaction (not a retry) is starting on \p Thread.
  virtual void onTxBegin(ThreadId Thread) { (void)Thread; }

  /// \p Thread aborted; \p Enemy identifies the conflicting transaction
  /// when \p EnemyKnown and \p Opens is the aborted attempt's read+write
  /// set size. Returns nanoseconds to back off (0 = retry immediately).
  virtual uint64_t onAbort(ThreadId Thread, TxThreadPair Enemy,
                           bool EnemyKnown, uint32_t Attempts,
                           uint64_t Opens) = 0;

  /// \p Thread committed an attempt that had opened \p Opens locations.
  virtual void onCommit(ThreadId Thread, uint64_t Opens) {
    (void)Thread;
    (void)Opens;
  }

protected:
  static constexpr unsigned MaxThreads = 64;
};

/// Polite: randomized exponential backoff, independent of the enemy.
class PoliteManager : public ContentionManager {
public:
  std::string name() const override { return "polite"; }
  uint64_t onAbort(ThreadId Thread, TxThreadPair Enemy, bool EnemyKnown,
                   uint32_t Attempts, uint64_t Opens) override;

private:
  std::atomic<uint64_t> Salt{0x9e3779b97f4a7c15ULL};
};

/// Karma: priority is the work invested (locations opened) since the
/// last commit; a lower-karma victim backs off proportionally to the
/// karma gap, a higher-karma one retries immediately.
class KarmaManager : public ContentionManager {
public:
  KarmaManager();
  std::string name() const override { return "karma"; }
  uint64_t onAbort(ThreadId Thread, TxThreadPair Enemy, bool EnemyKnown,
                   uint32_t Attempts, uint64_t Opens) override;
  void onCommit(ThreadId Thread, uint64_t Opens) override;

  uint64_t karmaOf(ThreadId Thread) const {
    return Karma[Thread % MaxThreads].load(std::memory_order_relaxed);
  }

private:
  std::unique_ptr<std::atomic<uint64_t>[]> KarmaStore;
  std::atomic<uint64_t> *Karma;
};

/// Greedy: the transaction with the earliest start time wins; a younger
/// victim backs off by a fixed quantum scaled by its retry count.
class GreedyManager : public ContentionManager {
public:
  GreedyManager();
  std::string name() const override { return "greedy"; }
  void onTxBegin(ThreadId Thread) override;
  uint64_t onAbort(ThreadId Thread, TxThreadPair Enemy, bool EnemyKnown,
                   uint32_t Attempts, uint64_t Opens) override;

private:
  std::atomic<uint64_t> Ticket{1};
  std::unique_ptr<std::atomic<uint64_t>[]> StartStore;
  std::atomic<uint64_t> *Start;
};

/// Factory by name ("polite", "karma", "greedy"); nullptr for unknown
/// names or "none".
std::unique_ptr<ContentionManager>
createContentionManager(const std::string &Name);

} // namespace gstm

#endif // GSTM_STM_CONTENTION_H
