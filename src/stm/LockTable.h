//===- stm/LockTable.h - Striped versioned write-locks -------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TL2's per-stripe versioned write-locks. Every transactional memory word
/// hashes to a stripe; the stripe word either holds the version number of
/// the last commit that wrote any word in the stripe (unlocked), or the
/// identity of the transaction currently holding the commit-time lock
/// (locked). Embedding the owner's (txid, thread) pair in the locked word
/// lets an aborting reader attribute its abort to a concrete transaction,
/// which is what the paper's thread-transactional-state tuples require.
///
/// Word layout:
///   bit 0      — 1 = locked, 0 = unlocked
///   bits 1..63 — unlocked: version; locked: packed TxThreadPair of owner
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STM_LOCKTABLE_H
#define GSTM_STM_LOCKTABLE_H

#include "support/Ids.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

namespace gstm {

/// How a word address maps to its stripe index (Tl2Config::StripeHash).
enum class StripeHashKind : uint8_t {
  /// Single Fibonacci multiply, index from the top bits. One cycle-ish,
  /// but consecutive words land on consecutive-ish stripes and the low
  /// address bits barely diffuse, so allocation-correlated pointers can
  /// clump into stripe runs.
  Fibonacci,
  /// Murmur3-style avalanche finalizer (xor-shift / multiply twice),
  /// index from the low bits. Two multiplies instead of one, but every
  /// address bit reaches every index bit — measurably fewer false
  /// stripe conflicts on pointer-heavy working sets.
  Mix,
};

/// A stripe word snapshot, decoded.
struct StripeState {
  bool Locked;
  /// Valid when unlocked.
  uint64_t Version;
  /// Valid when locked.
  TxThreadPair Owner;
};

/// Fixed-size table of versioned stripe locks, indexed by address hash.
class LockTable {
public:
  /// Creates a table with 2^\p Bits stripes, all unlocked at version 0,
  /// indexed via \p Hash.
  explicit LockTable(unsigned Bits = 20,
                     StripeHashKind Hash = StripeHashKind::Fibonacci)
      : BitCount(Bits), Mask((size_t{1} << Bits) - 1), Kind(Hash),
        Stripes(new std::atomic<uint64_t>[size_t{1} << Bits]) {
    assert(Bits >= 4 && Bits <= 28 && "unreasonable lock table size");
    for (size_t I = 0; I <= Mask; ++I)
      Stripes[I].store(0, std::memory_order_relaxed);
  }

  /// Number of stripes in the table.
  size_t size() const { return Mask + 1; }

  /// Returns the stripe word covering \p Addr.
  std::atomic<uint64_t> &stripeFor(const void *Addr) {
    return Stripes[indexFor(Addr)];
  }

  /// Returns the stripe index covering \p Addr (exposed for commit-time
  /// lock ordering and for tests).
  size_t indexFor(const void *Addr) const {
    uint64_t Key = reinterpret_cast<uintptr_t>(Addr) >> 3;
    if (Kind == StripeHashKind::Mix) {
      Key ^= Key >> 33;
      Key *= 0xff51afd7ed558ccdULL;
      Key ^= Key >> 29;
      Key *= 0xc4ceb9fe1a85ec53ULL;
      Key ^= Key >> 32;
      return static_cast<size_t>(Key) & Mask;
    }
    // Fibonacci hashing spreads consecutive words across stripes.
    return (Key * 0x9e3779b97f4a7c15ULL >> (64 - BitCount)) & Mask;
  }

  StripeHashKind hashKind() const { return Kind; }

  // Stripe version publishes on the single-fence commit paths are
  // relaxed stores; the one release fence after writeback is what makes
  // a reader's acquire load of the stripe observe the new data.
  // stm-order: publish(stripeAt) requires release-fence-before
  std::atomic<uint64_t> &stripeAt(size_t Index) {
    assert(Index <= Mask && "stripe index out of range");
    return Stripes[Index];
  }

  /// Decodes a raw stripe word.
  static StripeState decode(uint64_t Word) {
    StripeState S;
    S.Locked = (Word & 1) != 0;
    S.Version = Word >> 1;
    S.Owner = static_cast<TxThreadPair>(Word >> 1);
    return S;
  }

  /// Encodes an unlocked word carrying \p Version.
  static uint64_t encodeVersion(uint64_t Version) {
    assert(Version < (uint64_t{1} << 63) && "version overflow");
    return Version << 1;
  }

  /// Encodes a locked word owned by \p Owner.
  static uint64_t encodeLocked(TxThreadPair Owner) {
    return (static_cast<uint64_t>(Owner) << 1) | 1;
  }

private:
  unsigned BitCount;
  size_t Mask;
  StripeHashKind Kind;
  std::unique_ptr<std::atomic<uint64_t>[]> Stripes;
};

} // namespace gstm

#endif // GSTM_STM_LOCKTABLE_H
