//===- stm/StatsShard.h - Sharded per-thread STM telemetry ---------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread sharded runtime telemetry for the STM runtimes. The seed
/// runtime kept two globally shared atomics (commits/aborts) that every
/// worker hammered on the same cache line; this subsystem replaces them
/// with one cache-line-padded shard per thread that the owning thread
/// increments with relaxed atomics (uncontended, line stays in the local
/// cache) and that readers aggregate on demand after the run quiesces.
///
/// Beyond raw commit/abort totals each shard tracks what the paper's
/// measurement methodology needs (TTS tuples, abort-tail histograms,
/// Figs. 4-7):
///  * an abort breakdown by *cause* (known committer / unknown version /
///    explicit retry — AbortCauseKind) and by *site* (read-time,
///    lock-acquisition, commit-validation, explicit — AbortSite),
///  * a retries-before-commit histogram (log-free fixed buckets; the last
///    bucket absorbs the tail), and
///  * wall-clock attempt latency totals (enabled per-runtime via
///    Tl2Config/LibTmConfig::TrackAttemptLatency).
///
/// Invariants, relied on by the JSON export and `model_inspect --stats`:
///   Aborts  == sum(AbortsByCause) == sum(AbortsBySite)
///   Commits == sum(RetryHistogram) >= ReadOnlyCommits
/// The shard does not store Commits/Aborts separately — snapshots derive
/// them from the breakdowns, so the first and third equalities hold by
/// construction and sum(AbortsByCause) == sum(AbortsBySite) is the
/// independently checkable one.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STM_STATSSHARD_H
#define GSTM_STM_STATSSHARD_H

#include "stm/Observer.h"
#include "support/Ids.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace gstm {

/// Number of shards per runtime. ThreadIds map onto shards modulo this
/// (power of two); runs with more workers than shards alias threads onto
/// shards, which keeps totals exact but blurs the per-thread split.
inline constexpr size_t StatsShardCount = 64;

/// Cardinality of AbortCauseKind (Observer.h).
inline constexpr size_t NumAbortCauses = 3;
/// Cardinality of AbortSite (Observer.h).
inline constexpr size_t NumAbortSites = 4;
/// Buckets of the retries-before-commit histogram: bucket i counts
/// commits that needed exactly i aborted attempts first, except the last
/// bucket which absorbs everything >= RetryHistogramBuckets - 1.
inline constexpr size_t RetryHistogramBuckets = 16;

/// Human-readable names, indexed by the enum value.
const char *abortCauseName(AbortCauseKind Kind);
const char *abortSiteName(AbortSite Site);

/// One thread's counters. Alignment pads each shard to its own cache
/// lines so neighbouring shards never false-share.
///
/// Hot-path cost model: only the owning thread writes a shard, so the
/// increments are plain load+store pairs on atomic cells — no locked RMW
/// instruction at all, unlike the seed's two shared fetch_adds. Aggregate
/// commit/abort totals are not stored separately; they are derived from
/// the breakdowns (commits = sum of the retry histogram, aborts = sum of
/// the per-cause array), which both halves the hot-path work and makes
/// the export invariants hold by construction. The single-writer
/// increments are exact while the thread -> shard mapping is injective
/// (Threads <= StatsShardCount, true for every configuration in this
/// repo); aliased shards beyond that stay data-race-free and
/// self-consistent but may undercount.
struct alignas(256) StatsShard {
  std::atomic<uint64_t> ReadOnlyCommits{0};
  std::atomic<uint64_t> AbortsByCause[NumAbortCauses] = {};
  std::atomic<uint64_t> AbortsBySite[NumAbortSites] = {};
  std::atomic<uint64_t> RetryHistogram[RetryHistogramBuckets] = {};
  /// Attempt latency (every attempt, committed or aborted), accumulated
  /// only when the runtime config enables TrackAttemptLatency.
  std::atomic<uint64_t> Attempts{0};
  std::atomic<uint64_t> AttemptNanos{0};
  /// CommitRing attribution probes: every abort-time version->committer
  /// lookup, and the subset that missed because the ring slot had been
  /// overwritten. At OLTP commit rates a 13-bit ring wraps in
  /// microseconds, so a high miss ratio means abort attribution has
  /// silently degraded to UnknownCommitter — these counters make that
  /// visible in the JSON export instead of silent.
  std::atomic<uint64_t> CommitRingLookups{0};
  std::atomic<uint64_t> CommitRingMisses{0};
  /// Sharded-tier telemetry (shard/Sharded.h); all zero on unsharded
  /// runtimes. CrossShardCommits counts writer commits whose write set
  /// spanned >= 2 shard contexts (the 2PC path — the quantity steering
  /// minimizes); CrossShardAborts counts aborted attempts that had
  /// touched >= 2 shards when they died; PrepareRetries counts bounded
  /// spin iterations on locked stripes during cross-shard prepare.
  std::atomic<uint64_t> CrossShardCommits{0};
  std::atomic<uint64_t> CrossShardAborts{0};
  std::atomic<uint64_t> PrepareRetries{0};

  /// Single-writer increment: plain mov/add/mov instead of a locked RMW.
  static void bump(std::atomic<uint64_t> &C, uint64_t Delta = 1) {
    C.store(C.load(std::memory_order_relaxed) + Delta,
            std::memory_order_relaxed);
  }

  void recordCommit(uint32_t PriorAborts, bool ReadOnly) {
    if (ReadOnly)
      bump(ReadOnlyCommits);
    size_t Bucket = PriorAborts < RetryHistogramBuckets
                        ? PriorAborts
                        : RetryHistogramBuckets - 1;
    bump(RetryHistogram[Bucket]);
  }

  void recordAbort(AbortCauseKind Kind, AbortSite Site) {
    bump(AbortsByCause[static_cast<size_t>(Kind)]);
    bump(AbortsBySite[static_cast<size_t>(Site)]);
  }

  void recordAttempt(uint64_t Nanos) {
    bump(Attempts);
    bump(AttemptNanos, Nanos);
  }

  void recordCommitRingLookup(bool Hit) {
    bump(CommitRingLookups);
    if (!Hit)
      bump(CommitRingMisses);
  }

  void recordCrossShardCommit() { bump(CrossShardCommits); }
  void recordCrossShardAbort() { bump(CrossShardAborts); }
  void recordPrepareRetry() { bump(PrepareRetries); }
};

/// Plain (non-atomic) copy of one shard or of the whole-runtime
/// aggregate; what the harness stores, merges across runs, and exports as
/// JSON.
struct StatsSnapshot {
  uint64_t Commits = 0;
  uint64_t ReadOnlyCommits = 0;
  uint64_t Aborts = 0;
  uint64_t AbortsByCause[NumAbortCauses] = {};
  uint64_t AbortsBySite[NumAbortSites] = {};
  uint64_t RetryHistogram[RetryHistogramBuckets] = {};
  uint64_t Attempts = 0;
  uint64_t AttemptNanos = 0;
  uint64_t CommitRingLookups = 0;
  uint64_t CommitRingMisses = 0;
  uint64_t CrossShardCommits = 0;
  uint64_t CrossShardAborts = 0;
  uint64_t PrepareRetries = 0;

  void merge(const StatsSnapshot &Other);

  uint64_t causeTotal() const;
  uint64_t siteTotal() const;
  uint64_t retryTotal() const;

  /// Fraction of abort-time ring lookups that missed (0 when no aborts
  /// probed the ring). Near 1.0 means the ring is undersized for the
  /// commit rate and the cause breakdown is mostly UnknownCommitter.
  double commitRingMissRatio() const {
    return CommitRingLookups ? static_cast<double>(CommitRingMisses) /
                                   static_cast<double>(CommitRingLookups)
                             : 0.0;
  }

  /// Mean attempt latency in nanoseconds (0 when latency tracking was
  /// off or nothing ran).
  double meanAttemptNanos() const {
    return Attempts ? static_cast<double>(AttemptNanos) /
                          static_cast<double>(Attempts)
                    : 0.0;
  }

  /// True when the per-cause / per-site / per-bucket breakdowns sum
  /// exactly to the aggregate counters.
  bool consistent() const {
    return causeTotal() == Aborts && siteTotal() == Aborts &&
           retryTotal() == Commits && CrossShardCommits <= Commits &&
           CrossShardAborts <= Aborts;
  }
};

/// The per-runtime shard array. Writers index their own shard through
/// shard(ThreadId); readers aggregate on demand. Aggregation while
/// workers are still running is safe (relaxed loads of monotone
/// counters) but yields an in-flight snapshot, not a quiesced total.
class ShardedStats {
public:
  StatsShard &shard(ThreadId Thread) {
    return Shards[static_cast<size_t>(Thread) & (StatsShardCount - 1)];
  }

  /// Plain copy of shard \p Index (thread T lands in shard
  /// T % StatsShardCount).
  StatsSnapshot snapshotShard(size_t Index) const;

  /// Sum of all shards.
  StatsSnapshot aggregate() const;

  /// Convenience totals, replacing the seed's Tl2Stats::Commits/Aborts
  /// reads.
  uint64_t commits() const;
  uint64_t aborts() const;

  /// Zeroes every shard. Only call while no transactions are running.
  void reset();

  static constexpr size_t numShards() { return StatsShardCount; }

private:
  StatsShard Shards[StatsShardCount];
};

/// Backwards-compatible name: the runtime stats type the STMs expose.
using Tl2Stats = ShardedStats;

} // namespace gstm

#endif // GSTM_STM_STATSSHARD_H
