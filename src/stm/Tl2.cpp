//===- stm/Tl2.cpp - TL2 algorithm implementation -------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stm/Tl2.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace gstm;

void Tl2Txn::begin(TxId Tx) {
  CurrentTx = Tx;
  Rv = S.clock().sample();
  ReadSet.clear();
  WriteLog.clear();
  WriteIndex.clear();
  WriteFilter = 0;
  Acquired.clear();
  UndoLog.clear();
  if (TxAccessObserver *A = S.accessObserver())
    A->onTxBegin(Thread, Tx, Rv);
}

bool Tl2Txn::lookupWriteSet(const std::atomic<uint64_t> *Addr,
                            uint64_t &Value) {
  if ((WriteFilter & filterSignature(Addr)) == 0)
    return false;
  const uint32_t *Pos = WriteIndex.find(Addr);
  if (!Pos)
    return false;
  Value = WriteLog[*Pos].Value;
  return true;
}

uint64_t Tl2Txn::loadWord(const std::atomic<uint64_t> &Word) {
  maybePreempt();
  // Read-after-write: serve buffered values from the write set.
  uint64_t Buffered;
  if (lookupWriteSet(&Word, Buffered)) {
    if (TxAccessObserver *A = S.accessObserver())
      A->onTxLoad(Thread, &Word, Buffered, /*Version=*/0,
                  /*Buffered=*/true);
    return Buffered;
  }

  std::atomic<uint64_t> &Stripe = S.lockTable().stripeFor(&Word);
  uint64_t Pre = Stripe.load(std::memory_order_acquire);
  StripeState PreState = LockTable::decode(Pre);
  if (PreState.Locked) {
    // Eager mode writes in place under encounter-time locks, so a stripe
    // we already own is safe to read directly: its version was validated
    // against rv at acquisition and nobody else can touch it.
    if (PreState.Owner == packPair(CurrentTx, Thread)) {
      uint64_t Own = Word.load(std::memory_order_relaxed);
      if (TxAccessObserver *A = S.accessObserver())
        A->onTxLoad(Thread, &Word, Own, /*Version=*/0, /*Buffered=*/true);
      return Own;
    }
    abortOnOwner(PreState.Owner, AbortSite::Read);
  }

  uint64_t Value = Word.load(std::memory_order_acquire);

  uint64_t Post = Stripe.load(std::memory_order_acquire);
  if (Post != Pre) {
    StripeState PostState = LockTable::decode(Post);
    if (PostState.Locked)
      abortOnOwner(PostState.Owner, AbortSite::Read);
    abortOnVersion(PostState.Version, AbortSite::Read);
  }
  if (PreState.Version > Rv)
    abortOnVersion(PreState.Version, AbortSite::Read);

  ReadSet.push_back(&Stripe);
  if (TxAccessObserver *A = S.accessObserver())
    A->onTxLoad(Thread, &Word, Value, PreState.Version,
                /*Buffered=*/false);
  return Value;
}

void Tl2Txn::storeWord(std::atomic<uint64_t> &Word, uint64_t Value) {
  maybePreempt();
  if (S.config().Detection == ConflictDetection::Eager) {
    storeWordEager(Word, Value);
    return;
  }
  if (TxAccessObserver *A = S.accessObserver())
    A->onTxStore(Thread, &Word, Value);
  uint64_t Sig = filterSignature(&Word);
  if ((WriteFilter & Sig) != 0) {
    if (const uint32_t *Pos = WriteIndex.find(&Word)) {
      WriteLog[*Pos].Value = Value;
      return;
    }
  }
  WriteFilter |= Sig;
  WriteIndex.insert(&Word, static_cast<uint32_t>(WriteLog.size()));
  WriteLog.push_back(WriteEntry{&Word, Value});
}

void Tl2Txn::storeWordEager(std::atomic<uint64_t> &Word, uint64_t Value) {
  TxThreadPair Self = packPair(CurrentTx, Thread);
  std::atomic<uint64_t> &Stripe = S.lockTable().stripeFor(&Word);
  uint64_t Old = Stripe.load(std::memory_order_relaxed);
  for (;;) {
    StripeState OldState = LockTable::decode(Old);
    if (OldState.Locked) {
      if (OldState.Owner == Self)
        break; // stripe already ours from an earlier write
      abortOnOwner(OldState.Owner, AbortSite::LockAcquire);
    }
    // Acquiring a stripe newer than our snapshot would let the attempt
    // mix pre- and post-conflict state; abort instead, as TL2's eager
    // variant does.
    if (OldState.Version > Rv)
      abortOnVersion(OldState.Version, AbortSite::LockAcquire);
    if (Stripe.compare_exchange_weak(Old, LockTable::encodeLocked(Self),
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
      size_t Index = S.lockTable().indexFor(&Word);
      Acquired.push_back(AcquiredLock{Index, Old});
      if (TxAccessObserver *A = S.accessObserver())
        A->onLockAcquire(Thread, Index);
      break;
    }
  }
  if (TxAccessObserver *A = S.accessObserver())
    A->onTxStore(Thread, &Word, Value);
  UndoLog.emplace_back(&Word, Word.load(std::memory_order_relaxed));
  Word.store(Value, std::memory_order_release);
}

void Tl2Txn::undoEagerWrites() {
  for (auto It = UndoLog.rbegin(); It != UndoLog.rend(); ++It)
    It->first->store(It->second, std::memory_order_release);
  UndoLog.clear();
}

void Tl2Txn::commitOrThrow(uint32_t PriorAborts) {
  TxThreadPair Self = packPair(CurrentTx, Thread);

  // Read-only transactions: every read was validated against rv when it
  // happened, so the snapshot is consistent and no locks are needed.
  // (Eager attempts that wrote hold stripes in Acquired instead.)
  if (WriteLog.empty() && Acquired.empty()) {
    Shard->recordCommit(PriorAborts, /*ReadOnly=*/true);
    if (TxEventObserver *Obs = S.observer())
      Obs->onCommit(CommitEvent{Thread, CurrentTx, /*Version=*/0,
                                PriorAborts, /*ReadOnly=*/true});
    return;
  }

  // Lazy mode: acquire the write-set stripe locks in index order.
  // Ordered acquisition makes lock-acquisition deadlock impossible, so a
  // bounded-spin bailout is unnecessary; contention surfaces as
  // read-time / validation aborts. Eager mode already holds its stripes
  // (acquired at encounter time, in Acquired).
  StripeScratch.clear();
  for (const WriteEntry &E : WriteLog)
    StripeScratch.push_back(S.lockTable().indexFor(E.Addr));
  std::sort(StripeScratch.begin(), StripeScratch.end());
  StripeScratch.truncate(static_cast<size_t>(
      std::unique(StripeScratch.begin(), StripeScratch.end()) -
      StripeScratch.begin()));

  for (size_t Index : StripeScratch) {
    std::atomic<uint64_t> &Stripe = S.lockTable().stripeAt(Index);
    uint64_t Old = Stripe.load(std::memory_order_relaxed);
    for (;;) {
      StripeState OldState = LockTable::decode(Old);
      if (OldState.Locked)
        abortOnOwner(OldState.Owner, // rollback happens in the report
                     AbortSite::LockAcquire);
      if (Stripe.compare_exchange_weak(Old, LockTable::encodeLocked(Self),
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed))
        break;
    }
    Acquired.push_back(AcquiredLock{Index, Old});
    if (TxAccessObserver *A = S.accessObserver())
      A->onLockAcquire(Thread, Index);
  }

  // preLockWordFor binary-searches Acquired by stripe address; eager
  // acquisition happens in encounter order, so normalize first.
  if (S.config().Detection == ConflictDetection::Eager)
    std::sort(Acquired.begin(), Acquired.end(),
              [](const AcquiredLock &A, const AcquiredLock &B) {
                return A.StripeIndex < B.StripeIndex;
              });

  const Tl2Config &Cfg = S.config();
  // The torn-publish mutant exercises the legacy publish ordering, so it
  // pins the standard path.
  const bool SingleFence =
      Cfg.SingleFenceCommit && !Cfg.Fault.TornVersionPublish;

  uint64_t Wv;
  if (SingleFence) {
    // Single-fence commit: validate, write the data back, and only then
    // advance the clock and publish the versions — the N release-store
    // publish loop becomes relaxed stores behind one release fence.
    //
    // Validation must be UNCONDITIONAL here. The standard path's
    // `wv == rv+1` elision reasons "no commit interleaved between my rv
    // sample and my clock advance"; with the advance moved after
    // writeback, two cyclically-conflicting writers could both observe a
    // quiescent clock, both skip validation, and both commit a lost
    // update. The branch-free fast pass keeps the unconditional check
    // cheap. (Fault.SkipReadValidation is the self-test mutant that
    // omits revalidation entirely; see Tl2FaultInjection.)
    //
    // The fence below is the one ordering the single-fence path cannot
    // drop: the standard path's seq_cst clock fetch_add sits between
    // lock acquisition and validation, so each committer's lock CAS is
    // globally ordered before the other's validation loads. With the
    // clock advance moved after writeback, acq_rel CAS + acquire loads
    // alone permit store-buffering — two cyclically conflicting
    // committers each miss the other's freshly taken lock, both
    // validate clean, and both commit a lost update (real on POWER;
    // invisible on x86/ARMv8, so check_fuzz cannot catch it).
    // stm-order: fence(seq_cst) before(validateReadSet) label(Tl2Txn::commitOrThrow single-fence commit)
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!Cfg.Fault.SkipReadValidation)
      validateReadSet(Self);

    for (const WriteEntry &E : WriteLog)
      E.Addr->store(E.Value, std::memory_order_release);

    // One fence orders the writeback (and, in eager mode, the in-place
    // stores) before every version publish: a reader whose acquire load
    // of a stripe observes one of the relaxed stores below synchronizes
    // with this fence ([atomics.fences]) and therefore sees the new
    // data, exactly as it would have with per-stripe release stores.
    std::atomic_thread_fence(std::memory_order_release);

    Wv = S.clock().advance();
    // Publish attribution before the new version becomes visible so a
    // victim observing Wv can already resolve the committer.
    S.commitRing().record(Wv, Self);
    for (const AcquiredLock &L : Acquired)
      S.lockTable().stripeAt(L.StripeIndex)
          .store(LockTable::encodeVersion(Wv), std::memory_order_relaxed);
    Acquired.clear();
  } else {
    Wv = S.clock().advance();

    // TL2 optimization: if no commit interleaved between our rv sample
    // and our clock advance, the read set cannot have changed.
    if (Wv != Rv + 1 && !Cfg.Fault.SkipReadValidation)
      validateReadSet(Self);

    S.commitRing().record(Wv, Self);

    if (Cfg.Fault.TornVersionPublish) {
      // Self-test mutant: release the locks at the new version *before*
      // writing the data back, with a yield in between to widen the
      // window in which readers validate new-version stripes over old
      // data.
      for (const AcquiredLock &L : Acquired)
        S.lockTable().stripeAt(L.StripeIndex)
            .store(LockTable::encodeVersion(Wv), std::memory_order_release);
      std::this_thread::yield();
      for (const WriteEntry &E : WriteLog)
        E.Addr->store(E.Value, std::memory_order_release);
      Acquired.clear();
    } else {
      for (const WriteEntry &E : WriteLog)
        E.Addr->store(E.Value, std::memory_order_release);
      for (const AcquiredLock &L : Acquired)
        S.lockTable().stripeAt(L.StripeIndex)
            .store(LockTable::encodeVersion(Wv), std::memory_order_release);
      Acquired.clear();
    }
  }

  Shard->recordCommit(PriorAborts, /*ReadOnly=*/false);
  if (TxEventObserver *Obs = S.observer())
    Obs->onCommit(CommitEvent{Thread, CurrentTx, Wv, PriorAborts,
                              /*ReadOnly=*/false});
}

void Tl2Txn::validateReadSet(TxThreadPair Self) {
  // Fast pass: branch-free OR-reduction over the read set. A stripe word
  // is suspicious iff it is locked (bit 0) or carries a version newer
  // than rv; both conditions fold into the accumulator without a single
  // conditional inside the loop, so the common all-clean case runs as a
  // straight load/or chain the CPU can pipeline.
  const std::atomic<uint64_t> *const *Stripes = ReadSet.data();
  const size_t N = ReadSet.size();
  const uint64_t Snapshot = Rv;
  uint64_t Suspicious = 0;
  for (size_t I = 0; I < N; ++I) {
    uint64_t W = Stripes[I]->load(std::memory_order_acquire);
    Suspicious |= (W & 1) | static_cast<uint64_t>((W >> 1) > Snapshot);
  }
  if (Suspicious == 0)
    return;

  // Slow pass: something was locked or too new — re-walk with full
  // attribution. Stripes this commit locked itself (read-then-written
  // locations) always land here; their reads are validated against the
  // pre-lock word, or a commit that slid in between our read and our
  // lock acquisition would go undetected and be silently overwritten.
  // Sound even though the words are re-read: versions only grow, and a
  // stripe that went clean in between is genuinely clean.
  for (const std::atomic<uint64_t> *Stripe : ReadSet) {
    uint64_t Word = Stripe->load(std::memory_order_acquire);
    StripeState State = LockTable::decode(Word);
    if (State.Locked) {
      if (State.Owner != Self)
        abortOnOwner(State.Owner, AbortSite::CommitValidate);
      uint64_t PreLock = preLockWordFor(Stripe);
      StripeState PreLockState = LockTable::decode(PreLock);
      if (PreLockState.Version > Rv)
        abortOnVersion(PreLockState.Version, AbortSite::CommitValidate);
      continue;
    }
    if (State.Version > Rv)
      abortOnVersion(State.Version, AbortSite::CommitValidate);
  }
}

uint64_t Tl2Txn::preLockWordFor(const std::atomic<uint64_t> *Stripe) const {
  // Acquired is sorted by stripe index and the lock table is one
  // contiguous array, so pointer order matches index order.
  auto It = std::lower_bound(
      Acquired.begin(), Acquired.end(), Stripe,
      [this](const AcquiredLock &L, const std::atomic<uint64_t> *Ptr) {
        return &S.lockTable().stripeAt(L.StripeIndex) < Ptr;
      });
  assert(It != Acquired.end() &&
         &S.lockTable().stripeAt(It->StripeIndex) == Stripe &&
         "self-locked stripe missing from the acquired list");
  return It->PreviousWord;
}

void Tl2Txn::releaseAcquiredLocks() {
  // Restore the pre-lock words so the stripes revert to their old
  // versions; nothing was written back yet.
  for (auto It = Acquired.rbegin(); It != Acquired.rend(); ++It)
    S.lockTable().stripeAt(It->StripeIndex)
        .store(It->PreviousWord, std::memory_order_release);
  Acquired.clear();
}

void Tl2Txn::abortOnOwner(TxThreadPair Owner, AbortSite Site) {
  reportAbortAndThrow(AbortEvent{Thread, CurrentTx,
                                 AbortCauseKind::KnownCommitter, Owner,
                                 /*CauseVersion=*/0, Site});
}

void Tl2Txn::abortOnVersion(uint64_t Version, AbortSite Site) {
  TxThreadPair Committer;
  bool Hit = S.commitRing().lookup(Version, Committer);
  Shard->recordCommitRingLookup(Hit);
  if (Hit)
    reportAbortAndThrow(AbortEvent{Thread, CurrentTx,
                                   AbortCauseKind::KnownCommitter, Committer,
                                   Version, Site});
  reportAbortAndThrow(AbortEvent{Thread, CurrentTx,
                                 AbortCauseKind::UnknownCommitter,
                                 /*Cause=*/0, Version, Site});
}

void Tl2Txn::abortUnknown(AbortSite Site) {
  reportAbortAndThrow(AbortEvent{Thread, CurrentTx,
                                 AbortCauseKind::UnknownCommitter,
                                 /*Cause=*/0, /*CauseVersion=*/0, Site});
}

void Tl2Txn::retryAbort() {
  reportAbortAndThrow(AbortEvent{Thread, CurrentTx, AbortCauseKind::Explicit,
                                 /*Cause=*/0, /*CauseVersion=*/0,
                                 AbortSite::Explicit});
}

void Tl2Txn::reportAbortAndThrow(const AbortEvent &E) {
  // Opens must be counted before the eager rollback below clears UndoLog:
  // eager writes live there, not in WriteLog.
  LastOpens = opensCount();
  // Eager attempts may abort while holding stripes mid-run: revert their
  // in-place writes, then free the stripes. (Lazy commit aborts released
  // their locks already; both calls are no-ops then.)
  undoEagerWrites();
  releaseAcquiredLocks();
  LastEnemyKnown = E.Kind == AbortCauseKind::KnownCommitter;
  LastEnemy = LastEnemyKnown ? E.Cause : 0;
  Shard->recordAbort(E.Kind, E.Site);
  if (TxEventObserver *Obs = S.observer())
    Obs->onAbort(E);
  throw TxAbortException{};
}
