//===- stm/TVar.h - Typed transactional variable --------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TVar<T> is the unit of transactionally shared state for the word-based
/// TL2 runtime: a single 64-bit word holding a trivially copyable value of
/// at most 8 bytes. Transactions access it through Tl2Txn::load/store;
/// single-threaded setup and teardown code may use the Direct accessors.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STM_TVAR_H
#define GSTM_STM_TVAR_H

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace gstm {

/// A transactionally shared variable of type \p T.
///
/// The value lives in one atomic 64-bit word so that the STM's read
/// validation (stripe version pre/post checks) makes torn reads impossible.
/// T must be trivially copyable and at most 8 bytes (integers, floats,
/// doubles, enums, raw pointers, indices).
template <typename T> class TVar {
  static_assert(std::is_trivially_copyable_v<T>,
                "TVar requires a trivially copyable type");
  static_assert(sizeof(T) <= 8, "TVar holds at most one 64-bit word");

public:
  TVar() : Word(0) {}
  explicit TVar(T Value) : Word(encode(Value)) {}

  TVar(const TVar &) = delete;
  TVar &operator=(const TVar &) = delete;

  /// Non-transactional read. Only safe when no transaction can write this
  /// variable concurrently (setup, teardown, quiescent verification).
  T loadDirect() const {
    return decode(Word.load(std::memory_order_acquire));
  }

  /// Non-transactional write. Only safe outside the concurrent phase; it
  /// bypasses versioning, so a racing transaction would not detect it.
  void storeDirect(T Value) {
    Word.store(encode(Value), std::memory_order_release);
  }

  /// Underlying word, accessed by the STM runtime.
  std::atomic<uint64_t> &word() { return Word; }
  const std::atomic<uint64_t> &word() const { return Word; }

  static uint64_t encode(T Value) {
    uint64_t Raw = 0;
    std::memcpy(&Raw, &Value, sizeof(T));
    return Raw;
  }

  static T decode(uint64_t Raw) {
    T Value;
    std::memcpy(&Value, &Raw, sizeof(T));
    return Value;
  }

private:
  std::atomic<uint64_t> Word;
};

} // namespace gstm

#endif // GSTM_STM_TVAR_H
