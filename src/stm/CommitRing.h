//===- stm/CommitRing.h - Version -> committer attribution ring ----------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free ring that records, for recent commit versions, which
/// (transaction, thread) produced them. A TL2 reader that aborts because a
/// stripe's version exceeds its read version can look the version up here
/// and attribute the abort to the commit that caused it — the causal
/// information the paper's TTS tuples `{<aborted...>, committed}` encode.
/// Entries are overwritten after `size` further commits; a failed lookup
/// degrades gracefully to an unattributed abort.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STM_COMMITRING_H
#define GSTM_STM_COMMITRING_H

#include "support/Ids.h"

#include <atomic>
#include <cstdint>
#include <memory>

namespace gstm {

/// Fixed-size version-indexed ring of recent committers.
class CommitRing {
public:
  explicit CommitRing(unsigned Bits = 13)
      : Mask((size_t{1} << Bits) - 1), Slots(new Slot[size_t{1} << Bits]) {}

  /// Records that commit version \p Version was produced by \p Committer.
  void record(uint64_t Version, TxThreadPair Committer) {
    Slot &S = Slots[Version & Mask];
    S.Pair.store(Committer, std::memory_order_relaxed);
    S.Version.store(Version, std::memory_order_release);
  }

  /// Looks up the committer of \p Version. Returns true and fills
  /// \p Committer on success; false when the entry has been overwritten.
  bool lookup(uint64_t Version, TxThreadPair &Committer) const {
    const Slot &S = Slots[Version & Mask];
    if (S.Version.load(std::memory_order_acquire) != Version)
      return false;
    TxThreadPair P = S.Pair.load(std::memory_order_relaxed);
    // Re-check to guard against a concurrent overwrite between the loads.
    if (S.Version.load(std::memory_order_acquire) != Version)
      return false;
    Committer = P;
    return true;
  }

private:
  struct Slot {
    std::atomic<uint64_t> Version{~uint64_t{0}};
    std::atomic<TxThreadPair> Pair{0};
  };

  size_t Mask;
  std::unique_ptr<Slot[]> Slots;
};

} // namespace gstm

#endif // GSTM_STM_COMMITRING_H
