//===- stm/VersionClock.h - TL2 global version clock ---------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The global version clock at the heart of TL2 (Dice, Shalev, Shavit,
/// DISC'06). Every transaction samples the clock at start (its read
/// version, `rv`); every writer transaction advances it at commit to obtain
/// its write version (`wv`) which is then installed into the versioned
/// locks of all written stripes.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STM_VERSIONCLOCK_H
#define GSTM_STM_VERSIONCLOCK_H

#include <atomic>
#include <cstdint>

namespace gstm {

/// Monotonic global version clock shared by all transactions of one STM
/// runtime instance.
class VersionClock {
public:
  /// Samples the current time; used as a transaction's read version.
  uint64_t sample() const { return Time.load(std::memory_order_acquire); }

  /// Advances the clock and returns the new (unique) write version.
  uint64_t advance() {
    return Time.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Raises the clock to at least \p Version (CAS-max; release on
  /// success so a sampled value carries the raiser's prior writes).
  /// Used by the sharded tier's per-shard applied clocks, which trail
  /// the global commit sequencer and move only after the corresponding
  /// stripe versions have been published (shard/Sharded.h).
  void raiseTo(uint64_t Version) {
    uint64_t Cur = Time.load(std::memory_order_relaxed);
    while (Cur < Version &&
           !Time.compare_exchange_weak(Cur, Version,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
    }
  }

private:
  std::atomic<uint64_t> Time{0};
};

} // namespace gstm

#endif // GSTM_STM_VERSIONCLOCK_H
