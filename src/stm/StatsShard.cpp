//===- stm/StatsShard.cpp --------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "stm/StatsShard.h"

using namespace gstm;

const char *gstm::abortCauseName(AbortCauseKind Kind) {
  switch (Kind) {
  case AbortCauseKind::KnownCommitter:
    return "known_committer";
  case AbortCauseKind::UnknownCommitter:
    return "unknown_committer";
  case AbortCauseKind::Explicit:
    return "explicit";
  }
  return "invalid";
}

const char *gstm::abortSiteName(AbortSite Site) {
  switch (Site) {
  case AbortSite::Read:
    return "read";
  case AbortSite::LockAcquire:
    return "lock_acquire";
  case AbortSite::CommitValidate:
    return "commit_validate";
  case AbortSite::Explicit:
    return "explicit";
  }
  return "invalid";
}

void StatsSnapshot::merge(const StatsSnapshot &Other) {
  Commits += Other.Commits;
  ReadOnlyCommits += Other.ReadOnlyCommits;
  Aborts += Other.Aborts;
  for (size_t I = 0; I < NumAbortCauses; ++I)
    AbortsByCause[I] += Other.AbortsByCause[I];
  for (size_t I = 0; I < NumAbortSites; ++I)
    AbortsBySite[I] += Other.AbortsBySite[I];
  for (size_t I = 0; I < RetryHistogramBuckets; ++I)
    RetryHistogram[I] += Other.RetryHistogram[I];
  Attempts += Other.Attempts;
  AttemptNanos += Other.AttemptNanos;
  CommitRingLookups += Other.CommitRingLookups;
  CommitRingMisses += Other.CommitRingMisses;
  CrossShardCommits += Other.CrossShardCommits;
  CrossShardAborts += Other.CrossShardAborts;
  PrepareRetries += Other.PrepareRetries;
}

uint64_t StatsSnapshot::causeTotal() const {
  uint64_t Total = 0;
  for (uint64_t C : AbortsByCause)
    Total += C;
  return Total;
}

uint64_t StatsSnapshot::siteTotal() const {
  uint64_t Total = 0;
  for (uint64_t C : AbortsBySite)
    Total += C;
  return Total;
}

uint64_t StatsSnapshot::retryTotal() const {
  uint64_t Total = 0;
  for (uint64_t C : RetryHistogram)
    Total += C;
  return Total;
}

StatsSnapshot ShardedStats::snapshotShard(size_t Index) const {
  const StatsShard &S = Shards[Index & (StatsShardCount - 1)];
  StatsSnapshot Out;
  Out.ReadOnlyCommits = S.ReadOnlyCommits.load(std::memory_order_relaxed);
  for (size_t I = 0; I < NumAbortCauses; ++I)
    Out.AbortsByCause[I] = S.AbortsByCause[I].load(std::memory_order_relaxed);
  for (size_t I = 0; I < NumAbortSites; ++I)
    Out.AbortsBySite[I] = S.AbortsBySite[I].load(std::memory_order_relaxed);
  for (size_t I = 0; I < RetryHistogramBuckets; ++I)
    Out.RetryHistogram[I] =
        S.RetryHistogram[I].load(std::memory_order_relaxed);
  Out.Attempts = S.Attempts.load(std::memory_order_relaxed);
  Out.AttemptNanos = S.AttemptNanos.load(std::memory_order_relaxed);
  Out.CommitRingLookups =
      S.CommitRingLookups.load(std::memory_order_relaxed);
  Out.CommitRingMisses = S.CommitRingMisses.load(std::memory_order_relaxed);
  Out.CrossShardCommits =
      S.CrossShardCommits.load(std::memory_order_relaxed);
  Out.CrossShardAborts = S.CrossShardAborts.load(std::memory_order_relaxed);
  Out.PrepareRetries = S.PrepareRetries.load(std::memory_order_relaxed);
  // Totals are derived, not stored: the shard's hot path only maintains
  // the breakdowns.
  Out.Commits = Out.retryTotal();
  Out.Aborts = Out.causeTotal();
  return Out;
}

StatsSnapshot ShardedStats::aggregate() const {
  StatsSnapshot Total;
  for (size_t I = 0; I < StatsShardCount; ++I)
    Total.merge(snapshotShard(I));
  return Total;
}

uint64_t ShardedStats::commits() const {
  uint64_t Total = 0;
  for (const StatsShard &S : Shards)
    for (size_t I = 0; I < RetryHistogramBuckets; ++I)
      Total += S.RetryHistogram[I].load(std::memory_order_relaxed);
  return Total;
}

uint64_t ShardedStats::aborts() const {
  uint64_t Total = 0;
  for (const StatsShard &S : Shards)
    for (size_t I = 0; I < NumAbortCauses; ++I)
      Total += S.AbortsByCause[I].load(std::memory_order_relaxed);
  return Total;
}

void ShardedStats::reset() {
  for (StatsShard &S : Shards) {
    S.ReadOnlyCommits.store(0, std::memory_order_relaxed);
    for (size_t I = 0; I < NumAbortCauses; ++I)
      S.AbortsByCause[I].store(0, std::memory_order_relaxed);
    for (size_t I = 0; I < NumAbortSites; ++I)
      S.AbortsBySite[I].store(0, std::memory_order_relaxed);
    for (size_t I = 0; I < RetryHistogramBuckets; ++I)
      S.RetryHistogram[I].store(0, std::memory_order_relaxed);
    S.Attempts.store(0, std::memory_order_relaxed);
    S.AttemptNanos.store(0, std::memory_order_relaxed);
    S.CommitRingLookups.store(0, std::memory_order_relaxed);
    S.CommitRingMisses.store(0, std::memory_order_relaxed);
    S.CrossShardCommits.store(0, std::memory_order_relaxed);
    S.CrossShardAborts.store(0, std::memory_order_relaxed);
    S.PrepareRetries.store(0, std::memory_order_relaxed);
  }
}
