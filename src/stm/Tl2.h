//===- stm/Tl2.h - TL2 software transactional memory ---------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A word-based, write-back STM implementing the TL2 algorithm (Dice,
/// Shalev, Shavit, DISC'06): transactions sample a global version clock at
/// start (rv), log transactional reads, buffer transactional writes, and at
/// commit acquire per-stripe versioned locks, advance the clock (wv),
/// validate that no read stripe is newer than rv, write back, and release
/// the locks at version wv. Lazy (commit-time) conflict detection matches
/// the configuration the paper evaluates.
///
/// Two paper-specific extensions over stock TL2:
///  * every commit registers (wv -> committer) in a CommitRing so aborting
///    readers can attribute their abort to the causal commit, and
///  * a StartGate hook lets guided execution withhold a transaction before
///    it (re)starts.
///
/// Usage:
/// \code
///   Tl2Stm Stm;
///   TVar<uint64_t> Counter{0};
///   Tl2Txn Txn(Stm, /*Thread=*/0);
///   Txn.run(/*Tx=*/0, [&](Tl2Txn &Tx) {
///     Tx.store(Counter, Tx.load(Counter) + 1);
///   });
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STM_TL2_H
#define GSTM_STM_TL2_H

#include "engine/TxnExecutor.h"
#include "stm/CommitRing.h"
#include "stm/Contention.h"
#include "stm/LockTable.h"
#include "stm/Observer.h"
#include "stm/StatsShard.h"
#include "stm/VersionClock.h"
#include "support/Ids.h"
#include "support/MiniVector.h"
#include "support/PtrIndexMap.h"

#include <chrono>

#include <atomic>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <utility>

namespace gstm {

template <typename T> class TVar;

/// When conflicts are detected (paper Sec. II: "STMs provide options of
/// eager and lazy conflict detection").
enum class ConflictDetection : uint8_t {
  /// Commit-time locking with buffered (write-back) updates — the TL2
  /// default the paper evaluates.
  Lazy,
  /// Encounter-time locking with in-place (write-through) updates and an
  /// undo log; conflicting writers abort at first touch.
  Eager,
};

/// Deliberately broken STM behavior for the correctness harness's
/// mutation self-test (src/check/, tests/check_test.cpp): each knob
/// disables one safety mechanism so the history checkers can prove they
/// flag the resulting executions. Consulted only on the commit path.
/// Never enable outside the self-test.
struct Tl2FaultInjection {
  /// Skip commit-time read-set validation: a commit that interleaved
  /// after this attempt's reads goes undetected (lost updates, stale
  /// reads entering committed state).
  bool SkipReadValidation = false;
  /// Publish the new stripe versions (releasing the commit locks) before
  /// writing the write-set values back: readers can validate a stripe at
  /// the new version while still observing the old data.
  bool TornVersionPublish = false;
};

/// Construction-time configuration of a Tl2Stm runtime.
struct Tl2Config {
  unsigned LockTableBits = 20;
  unsigned CommitRingBits = 13;
  ConflictDetection Detection = ConflictDetection::Lazy;
  /// Address-to-stripe hash (see StripeHashKind). Mix by default: its
  /// full-avalanche indexing measurably cuts false stripe conflicts on
  /// pointer-heavy working sets; Fibonacci remains available for A/B
  /// comparisons against stock TL2.
  StripeHashKind StripeHash = StripeHashKind::Mix;
  /// Single-fence commit (2PLSF/zardoshti "SINGLEFENCEOPT" lineage):
  /// writers validate, write the data back, then advance the clock and
  /// publish the stripe versions with relaxed stores behind one release
  /// fence — N release stores on the publish path collapse into one
  /// fence. Costs the `wv == rv+1` validation-elision (which is unsound
  /// once the clock advances after writeback; see Tl2.cpp), so
  /// single-threaded writers revalidate their read sets — the branch-free
  /// validation loop keeps that cheap. Ignored (standard ordering) when
  /// Fault.TornVersionPublish needs the legacy publish path.
  bool SingleFenceCommit = true;
  BackoffKind Backoff = BackoffKind::Yield;
  /// Scheduler perturbation: when non-zero, each transactional access
  /// yields the CPU with probability 2^-PreemptShift. On a machine with
  /// fewer cores than worker threads, transactions otherwise execute
  /// back-to-back within a scheduling quantum and almost never overlap,
  /// which would suppress the conflicts/aborts whose non-determinism the
  /// paper studies; random yield points restore multicore-like
  /// interleaving density (see DESIGN.md, substitutions). 0 = off.
  unsigned PreemptShift = 0;
  /// When true, every attempt's wall-clock latency is accumulated into
  /// the per-thread stats shard (two steady_clock reads per attempt).
  /// Off by default so microbenchmarks measure bare STM cost; the
  /// experiment harness turns it on (see core/Runner.h).
  bool TrackAttemptLatency = false;
  /// Fault injection for the checker self-test; all off by default.
  Tl2FaultInjection Fault;
};

/// One STM runtime instance: the shared state (clock, lock table, ring)
/// plus the instrumentation hooks. Workloads create one per run.
class Tl2Stm {
public:
  explicit Tl2Stm(const Tl2Config &Config = Tl2Config())
      : Cfg(Config), Locks(Config.LockTableBits, Config.StripeHash),
        Ring(Config.CommitRingBits) {}

  Tl2Stm(const Tl2Stm &) = delete;
  Tl2Stm &operator=(const Tl2Stm &) = delete;

  /// Installs \p Obs as the event observer (nullptr to disable). Must not
  /// be called while transactions are running.
  void setObserver(TxEventObserver *Obs) { Observer = Obs; }

  /// Installs \p G as the start gate (nullptr to disable). Must not be
  /// called while transactions are running.
  void setGate(StartGate *G) { Gate = G; }

  /// Installs a contention manager that overrides the config's backoff
  /// policy (nullptr to restore it). Must not be called while
  /// transactions are running.
  void setContentionManager(ContentionManager *M) { Cm = M; }

  /// Installs \p Obs as the per-access observer (nullptr to disable,
  /// the default). Must not be called while transactions are running.
  /// With no observer the hot path pays one null test per access; see
  /// TxAccessObserver.
  void setAccessObserver(TxAccessObserver *Obs) { AccessObs = Obs; }

  const Tl2Config &config() const { return Cfg; }
  LockTable &lockTable() { return Locks; }
  VersionClock &clock() { return Clock; }
  CommitRing &commitRing() { return Ring; }
  TxEventObserver *observer() const { return Observer; }
  StartGate *gate() const { return Gate; }
  ContentionManager *contentionManager() const { return Cm; }
  TxAccessObserver *accessObserver() const { return AccessObs; }
  /// Sharded per-thread telemetry (see stm/StatsShard.h). Workers touch
  /// only their own shard; aggregate() after the run for exact totals.
  Tl2Stats &stats() { return Counters; }
  const Tl2Stats &stats() const { return Counters; }

private:
  Tl2Config Cfg;
  VersionClock Clock;
  LockTable Locks;
  CommitRing Ring;
  TxEventObserver *Observer = nullptr;
  StartGate *Gate = nullptr;
  ContentionManager *Cm = nullptr;
  TxAccessObserver *AccessObs = nullptr;
  Tl2Stats Counters;
};

/// Per-thread transaction descriptor. Reused across transactions; the
/// read/write sets keep their capacity between runs. Not thread-safe: one
/// descriptor per worker thread. The retry loop (`run`) comes from the
/// shared engine-family executor (engine/TxnExecutor.h).
class Tl2Txn : public TxnExecutor<Tl2Txn> {
public:
  Tl2Txn(Tl2Stm &Stm, ThreadId Thread)
      : TxnExecutor<Tl2Txn>(Thread), S(Stm), Thread(Thread),
        Shard(&Stm.stats().shard(Thread)) {}

  Tl2Txn(const Tl2Txn &) = delete;
  Tl2Txn &operator=(const Tl2Txn &) = delete;

  /// Transactional read of a raw 64-bit word.
  uint64_t loadWord(const std::atomic<uint64_t> &Word);

  /// Transactional (buffered) write of a raw 64-bit word.
  void storeWord(std::atomic<uint64_t> &Word, uint64_t Value);

  /// Typed transactional read of a TVar.
  template <typename T> T load(const TVar<T> &Var) {
    return TVar<T>::decode(loadWord(Var.word()));
  }

  /// Typed transactional write of a TVar. The value type is non-deduced
  /// so integer literals convert to the variable's type.
  template <typename T>
  void store(TVar<T> &Var, std::type_identity_t<T> Value) {
    storeWord(Var.word(), TVar<T>::encode(Value));
  }

  /// Explicitly aborts and retries the current transaction attempt.
  [[noreturn]] void retryAbort();

  ThreadId threadId() const { return Thread; }
  TxId txId() const { return CurrentTx; }

  /// Read version of the attempt in flight (exposed for tests).
  uint64_t readVersion() const { return Rv; }
  size_t readSetSize() const { return ReadSet.size(); }
  size_t writeSetSize() const { return WriteLog.size(); }

private:
  friend class TxnExecutor<Tl2Txn>;

  struct WriteEntry {
    std::atomic<uint64_t> *Addr;
    uint64_t Value;
  };
  struct AcquiredLock {
    size_t StripeIndex;
    uint64_t PreviousWord;
  };

  /// Executor contract (engine/TxnExecutor.h).
  Tl2Stm &stm() { return S; }
  StatsShard *shard() { return Shard; }

  void begin(TxId Tx);
  /// Commits the attempt or reports the abort cause and throws.
  void commitOrThrow(uint32_t PriorAborts);
  /// Commit-time read-set revalidation: every read stripe must still be
  /// unlocked (or self-locked at a pre-lock version <= rv) and at a
  /// version <= rv. Throws on conflict. A branch-free OR-reduction pass
  /// clears the common all-clean case without a single conditional; only
  /// a suspicious read set pays the per-stripe attribution walk.
  void validateReadSet(TxThreadPair Self);

  /// Eager-mode store: lock the stripe at first touch, log the old value
  /// and write in place.
  void storeWordEager(std::atomic<uint64_t> &Word, uint64_t Value);
  /// Reverts in-place writes of an aborting eager attempt.
  void undoEagerWrites();

  /// Reports an abort caused by a known conflicting committer and throws;
  /// \p Site tags where in the attempt the conflict surfaced.
  [[noreturn]] void abortOnOwner(TxThreadPair Owner, AbortSite Site);
  /// Reports an abort caused by a too-new version and throws; attribution
  /// goes through the commit ring.
  [[noreturn]] void abortOnVersion(uint64_t Version, AbortSite Site);
  [[noreturn]] void abortUnknown(AbortSite Site);
  [[noreturn]] void reportAbortAndThrow(const AbortEvent &E);

  /// Locations this attempt opened: logged reads plus lazy buffered
  /// writes plus eager in-place writes. Eager writes live in UndoLog (and
  /// their stripes in Acquired), not WriteLog — counting only WriteLog
  /// made contention managers see eager writers as having invested no
  /// write work.
  uint64_t opensCount() const {
    return ReadSet.size() + WriteLog.size() + UndoLog.size();
  }

  void releaseAcquiredLocks();
  /// Pre-lock word of a stripe this commit already locked (stripe must be
  /// in Acquired).
  uint64_t preLockWordFor(const std::atomic<uint64_t> *Stripe) const;

  /// Returns true and fills \p Value when \p Addr is in the write set.
  bool lookupWriteSet(const std::atomic<uint64_t> *Addr, uint64_t &Value);

  static uint64_t filterSignature(const void *Addr) {
    auto Key = reinterpret_cast<uintptr_t>(Addr) >> 3;
    return uint64_t{1} << ((Key * 0x9e3779b97f4a7c15ULL) >> 58);
  }

  Tl2Stm &S;
  ThreadId Thread;
  /// This thread's telemetry shard, resolved once at construction.
  StatsShard *Shard;
  TxId CurrentTx = 0;
  uint64_t Rv = 0;

  /// Per-attempt logs. MiniVector/PtrIndexMap rather than std::vector /
  /// std::unordered_map: the inline capacities below cover the common
  /// transaction sizes without touching the heap, `clear()` in begin() is
  /// O(1) (a count store / generation bump, not a bucket walk), and any
  /// heap growth a large first attempt does pay is retained across the
  /// retry loop — an attempt after the first never allocates.
  MiniVector<const std::atomic<uint64_t> *, 64> ReadSet;
  MiniVector<WriteEntry, 32> WriteLog;
  PtrIndexMap<uint32_t, 5> WriteIndex;
  uint64_t WriteFilter = 0;
  MiniVector<size_t, 32> StripeScratch;
  MiniVector<AcquiredLock, 32> Acquired;
  /// Eager mode: (address, previous value) pairs, restored in reverse on
  /// abort. Duplicate addresses are fine — reverse restore ends at the
  /// oldest value.
  MiniVector<std::pair<std::atomic<uint64_t> *, uint64_t>, 32> UndoLog;
};

} // namespace gstm

#endif // GSTM_STM_TL2_H
