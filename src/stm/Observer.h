//===- stm/Observer.h - STM instrumentation interfaces -------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two hook interfaces through which the model layer plugs into an STM
/// runtime without the STM depending on the model:
///
///  * TxEventObserver — receives every commit and abort, with causal
///    attribution where available. The paper instruments TX_start,
///    TX_abort, TX_commit in TL2 to emit its "transaction sequence"; this
///    is the C++ equivalent.
///  * StartGate — consulted at every transaction (re)start. Guided
///    execution (paper Sec. V) withholds threads here when their
///    (transaction, thread) pair is not part of any high-probability
///    destination state of the current state.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STM_OBSERVER_H
#define GSTM_STM_OBSERVER_H

#include "support/Ids.h"

#include <cstdint>

namespace gstm {

/// Why a transaction attempt aborted.
enum class AbortCauseKind : uint8_t {
  /// Conflicting committer identified (pair in AbortEvent::Cause).
  KnownCommitter,
  /// Conflict detected but the committer's identity was lost (stale ring
  /// entry or torn stripe read).
  UnknownCommitter,
  /// The user requested an explicit retry.
  Explicit,
};

/// Where in the transaction lifecycle the abort fired. Orthogonal to
/// AbortCauseKind: the cause says *who* conflicted, the site says *when*
/// the conflict surfaced.
enum class AbortSite : uint8_t {
  /// During a transactional load (stale version or locked stripe seen at
  /// read time).
  Read,
  /// While acquiring a stripe/object lock — encounter-time in eager mode,
  /// commit-time in lazy mode.
  LockAcquire,
  /// During commit-time read-set validation.
  CommitValidate,
  /// User-requested retryAbort.
  Explicit,
};

/// Description of one abort, passed to TxEventObserver::onAbort.
struct AbortEvent {
  ThreadId Thread;
  TxId Tx;
  AbortCauseKind Kind;
  /// Valid when Kind == KnownCommitter.
  TxThreadPair Cause;
  /// Version that exposed the conflict, when known (else 0).
  uint64_t CauseVersion;
  /// Lifecycle point at which the abort fired.
  AbortSite Site = AbortSite::Read;
};

/// Description of one successful commit.
struct CommitEvent {
  ThreadId Thread;
  TxId Tx;
  /// Write version installed by this commit. Read-only commits install no
  /// version; check ReadOnly rather than comparing Version against 0,
  /// which is also the clock's initial value.
  uint64_t Version;
  /// Number of aborted attempts this transaction suffered before
  /// committing (for per-thread abort histograms).
  uint32_t PriorAborts;
  /// True when the commit installed no version (empty write set). The
  /// explicit flag replaces the old `Version == 0` sentinel, which
  /// collided with the legitimate "version unknown" meaning downstream.
  bool ReadOnly = false;
};

/// Receives the transaction event stream. Implementations must be
/// thread-safe; callbacks may be invoked concurrently from all workers.
class TxEventObserver {
public:
  virtual ~TxEventObserver() = default;
  virtual void onCommit(const CommitEvent &E) = 0;
  virtual void onAbort(const AbortEvent &E) = 0;
};

/// Gate consulted before each transaction attempt begins. May block the
/// calling thread (guided execution holds threads back here) but must
/// eventually return to guarantee progress.
class StartGate {
public:
  virtual ~StartGate() = default;
  virtual void onTxStart(ThreadId Thread, TxId Tx) = 0;
};

} // namespace gstm

#endif // GSTM_STM_OBSERVER_H
