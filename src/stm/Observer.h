//===- stm/Observer.h - STM instrumentation interfaces -------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two hook interfaces through which the model layer plugs into an STM
/// runtime without the STM depending on the model:
///
///  * TxEventObserver — receives every commit and abort, with causal
///    attribution where available. The paper instruments TX_start,
///    TX_abort, TX_commit in TL2 to emit its "transaction sequence"; this
///    is the C++ equivalent.
///  * StartGate — consulted at every transaction (re)start. Guided
///    execution (paper Sec. V) withholds threads here when their
///    (transaction, thread) pair is not part of any high-probability
///    destination state of the current state.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_STM_OBSERVER_H
#define GSTM_STM_OBSERVER_H

#include "support/Ids.h"

#include <cstdint>

namespace gstm {

/// Why a transaction attempt aborted.
enum class AbortCauseKind : uint8_t {
  /// Conflicting committer identified (pair in AbortEvent::Cause).
  KnownCommitter,
  /// Conflict detected but the committer's identity was lost (stale ring
  /// entry or torn stripe read).
  UnknownCommitter,
  /// The user requested an explicit retry.
  Explicit,
};

/// Where in the transaction lifecycle the abort fired. Orthogonal to
/// AbortCauseKind: the cause says *who* conflicted, the site says *when*
/// the conflict surfaced.
enum class AbortSite : uint8_t {
  /// During a transactional load (stale version or locked stripe seen at
  /// read time).
  Read,
  /// While acquiring a stripe/object lock — encounter-time in eager mode,
  /// commit-time in lazy mode.
  LockAcquire,
  /// During commit-time read-set validation.
  CommitValidate,
  /// User-requested retryAbort.
  Explicit,
};

/// Description of one abort, passed to TxEventObserver::onAbort.
struct AbortEvent {
  ThreadId Thread;
  TxId Tx;
  AbortCauseKind Kind;
  /// Valid when Kind == KnownCommitter.
  TxThreadPair Cause;
  /// Version that exposed the conflict, when known (else 0).
  uint64_t CauseVersion;
  /// Lifecycle point at which the abort fired.
  AbortSite Site = AbortSite::Read;
};

/// Description of one successful commit.
struct CommitEvent {
  ThreadId Thread;
  TxId Tx;
  /// Write version installed by this commit. Read-only commits install no
  /// version; check ReadOnly rather than comparing Version against 0,
  /// which is also the clock's initial value.
  uint64_t Version;
  /// Number of aborted attempts this transaction suffered before
  /// committing (for per-thread abort histograms).
  uint32_t PriorAborts;
  /// True when the commit installed no version (empty write set). The
  /// explicit flag replaces the old `Version == 0` sentinel, which
  /// collided with the legitimate "version unknown" meaning downstream.
  bool ReadOnly = false;
};

/// Receives the transaction event stream. Implementations must be
/// thread-safe; callbacks may be invoked concurrently from all workers.
class TxEventObserver {
public:
  virtual ~TxEventObserver() = default;
  virtual void onCommit(const CommitEvent &E) = 0;
  virtual void onAbort(const AbortEvent &E) = 0;
};

/// Gate consulted before each transaction attempt begins. May block the
/// calling thread (guided execution holds threads back here) but must
/// eventually return to guarantee progress.
class StartGate {
public:
  virtual ~StartGate() = default;
  virtual void onTxStart(ThreadId Thread, TxId Tx) = 0;
};

/// Per-access instrumentation used by the correctness harness
/// (src/check/): every transactional read (value + validated version),
/// buffered/in-place write, and versioned-lock acquisition of every
/// attempt — including attempts that later abort. The runtimes guard each
/// callback behind a single null-pointer test on a field cached in the
/// shared STM object, so a run without an access observer pays one
/// predictable branch per access and nothing else (the acceptance bar the
/// micro_stm_ops bench pins down).
///
/// Callbacks run on the worker thread performing the access and are
/// ordered within that thread; implementations must be thread-safe across
/// threads. LibTm reports its object-granular accesses with Addr = the
/// TObjBase and Value = payload word 0, which is exact for the
/// single-word objects the check harness drives.
class TxAccessObserver {
public:
  virtual ~TxAccessObserver() = default;

  /// A new attempt of (\p Thread, \p Tx) begins; \p ReadVersion is the
  /// read version (rv) the attempt sampled.
  virtual void onTxBegin(ThreadId Thread, TxId Tx, uint64_t ReadVersion) = 0;

  /// A transactional read of \p Addr returned \p Value. \p Version is the
  /// stripe/object version the read validated against; \p Buffered marks
  /// reads served from the attempt's own write set (or, in eager mode,
  /// from a stripe the attempt already owns), which saw no global state
  /// and carry Version = 0.
  virtual void onTxLoad(ThreadId Thread, const void *Addr, uint64_t Value,
                        uint64_t Version, bool Buffered) = 0;

  /// A transactional write of \p Value to \p Addr (buffered in lazy mode,
  /// in-place under the stripe lock in eager mode).
  virtual void onTxStore(ThreadId Thread, const void *Addr,
                         uint64_t Value) = 0;

  /// The attempt acquired the versioned lock identified by \p LockId
  /// (stripe index for TL2, object address for LibTm) — encounter-time in
  /// eager mode, commit-time otherwise.
  virtual void onLockAcquire(ThreadId Thread, uint64_t LockId) = 0;
};

} // namespace gstm

#endif // GSTM_STM_OBSERVER_H
