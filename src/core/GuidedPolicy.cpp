//===- core/GuidedPolicy.cpp -----------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "core/GuidedPolicy.h"

using namespace gstm;

GuidedPolicy::GuidedPolicy(Tsa ModelIn, double TfactorIn)
    : Model(std::move(ModelIn)), Tfactor(TfactorIn) {
  Allowed.resize(Model.numStates());
  for (StateId S = 0; S < Model.numStates(); ++S) {
    PairSet &Set = Allowed[S];
    for (const TsaEdge &Edge :
         highProbabilitySuccessors(Model, S, Tfactor)) {
      const StateTuple &Dest = Model.state(Edge.Dest);
      Set.Pairs.insert(Dest.Commit);
      for (TxThreadPair P : Dest.Aborts)
        Set.Pairs.insert(P);
    }
  }
}
