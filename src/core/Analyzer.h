//===- core/Analyzer.h - Model analysis (guidance metric) ----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The model-analysis phase (paper Sec. IV): before using a model for
/// guidance, verify that the bias needed to guide execution exists. The
/// *guidance metric* is the percentage ratio of the number of transition
/// states reachable under guidance (the high-probability subset D(s),
/// threshold Ph/Tfactor) to the number reachable unguided, summed over all
/// states. Lower is better; above ~50 the transition distribution is near
/// uniform (|S| ~= |S'|) and guidance cannot reduce variance — the paper's
/// analyzer correctly rejects ssca2 on this basis (Table I: 72% / 57%).
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CORE_ANALYZER_H
#define GSTM_CORE_ANALYZER_H

#include "core/Tsa.h"

#include <cstddef>
#include <vector>

namespace gstm {

/// Tunables of the analysis phase.
struct AnalyzerConfig {
  /// The paper's Tfactor knob (Sec. VI): a destination is considered high
  /// probability when its probability is >= Pmax / Tfactor. The paper
  /// sweeps 1..10 and settles on 4.
  double Tfactor = 4.0;
  /// Guidance-metric percentage above which the model is rejected.
  double MetricRejectThreshold = 50.0;
  /// Models with fewer states than this carry too little structure to
  /// guide ("if the model contains too few states ... unfit").
  size_t MinStates = 4;
};

/// Result of analyzing one model.
struct AnalyzerReport {
  /// 100 * sum_s |D(s)| / sum_s |successors(s)| (paper Tables I and V).
  double GuidanceMetricPercent = 0.0;
  size_t NumStates = 0;
  uint64_t NumTransitions = 0;
  /// Mean out-degree over states with at least one outbound edge.
  double MeanOutDegree = 0.0;
  /// Mean |D(s)| over the same states.
  double MeanGuidedOutDegree = 0.0;
  /// Verdict: worth guiding with (metric below threshold, enough states).
  bool Optimizable = false;
};

/// Returns the destinations of \p State whose probability is at least
/// Pmax/Tfactor — the paper's set D of allowed transitions.
std::vector<TsaEdge> highProbabilitySuccessors(const Tsa &Model,
                                               StateId State, double Tfactor);

/// Analyzes \p Model per the paper's Sec. IV procedure.
AnalyzerReport analyzeModel(const Tsa &Model,
                            const AnalyzerConfig &Config = AnalyzerConfig());

} // namespace gstm

#endif // GSTM_CORE_ANALYZER_H
