//===- core/Trace.h - Transaction sequence capture and grouping ----------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile-execution phase of the paper's framework: a modified STM
/// "captures all commits and the corresponding aborts" into a transaction
/// sequence (Tseq). TraceCollector is the TxEventObserver that records the
/// stream; groupTuples() parses a Tseq into the sequence of thread
/// transactional states from which the model is generated (Algorithm 1).
///
/// Two grouping modes are provided:
///  * Sequence — each commit absorbs the aborts logged since the previous
///    commit. This is cheap enough to run online and is what guided
///    execution uses to track the current state, so models intended for
///    guidance are built in this mode (the default).
///  * Causal — each abort attaches to the commit that caused it, using the
///    attribution the STM provides (lock-owner identity or commit-ring
///    version lookup). Offline-only; used to ablate how much precise
///    attribution changes the model (DESIGN.md Sec. 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CORE_TRACE_H
#define GSTM_CORE_TRACE_H

#include "core/Tts.h"
#include "stm/Observer.h"
#include "support/Stats.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace gstm {

/// One entry of the captured transaction sequence.
struct TraceEvent {
  /// Global capture order (atomic counter at emission time).
  uint64_t Seq;
  /// Commit version for commits; conflict-exposing version for aborts
  /// when known (else 0). For commits check ReadOnly instead of testing
  /// Version against 0.
  uint64_t Version;
  ThreadId Thread;
  TxId Tx;
  bool IsCommit;
  /// Commit-only: the commit installed no version (CommitEvent::ReadOnly).
  bool ReadOnly = false;
  /// Abort-only fields.
  AbortCauseKind Kind = AbortCauseKind::UnknownCommitter;
  TxThreadPair Cause = 0;
  /// Commit-only: aborted attempts this transaction suffered first.
  uint32_t PriorAborts = 0;
};

/// How aborts are grouped with commits when parsing a Tseq into states.
enum class Grouping : uint8_t { Sequence, Causal };

/// Thread-safe recorder of the transaction event stream.
///
/// Each worker thread appends to its own buffer (no locking on the hot
/// path); a global atomic sequence number provides the interleaving order.
/// Attach to an STM with Tl2Stm::setObserver (or via GuideController's
/// downstream slot when a run is guided).
class TraceCollector : public TxEventObserver {
public:
  explicit TraceCollector(unsigned NumThreads)
      : PerThread(NumThreads) {}

  void onCommit(const CommitEvent &E) override;
  void onAbort(const AbortEvent &E) override;

  /// Merges the per-thread buffers into one stream ordered by capture
  /// sequence. Call after all workers have joined.
  std::vector<TraceEvent> takeTrace();

  /// Builds per-thread histograms of "aborts suffered before commit" from
  /// the recorded commits (the distributions of paper Figures 5/7/8).
  std::vector<AbortHistogram> abortHistograms() const;

  /// Clears all buffers for reuse.
  void reset();

private:
  struct alignas(64) Buffer {
    std::vector<TraceEvent> Events;
  };
  std::atomic<uint64_t> NextSeq{0};
  std::vector<Buffer> PerThread;
};

/// Parses an ordered Tseq into the sequence of thread transactional
/// states under the given \p Mode. Tuples are canonicalized.
std::vector<StateTuple> groupTuples(const std::vector<TraceEvent> &Trace,
                                    Grouping Mode);

} // namespace gstm

#endif // GSTM_CORE_TRACE_H
