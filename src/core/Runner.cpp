//===- core/Runner.cpp -----------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "core/Runner.h"

#include "support/Barrier.h"
#include "support/Timer.h"

#include <cassert>
#include <ctime>
#include <memory>
#include <thread>

namespace {
/// CPU time consumed by the calling thread, in seconds.
double threadCpuSeconds() {
  timespec Ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &Ts);
  return static_cast<double>(Ts.tv_sec) +
         static_cast<double>(Ts.tv_nsec) * 1e-9;
}
} // namespace

using namespace gstm;

RunResult gstm::runWorkloadOnce(TlWorkload &Workload,
                                const RunnerConfig &Config, uint64_t Seed,
                                const GuidedPolicy *Policy) {
  assert(Config.Threads > 0 && "need at least one worker");

  Tl2Stm Stm(Config.Stm);
  if (Config.Cm)
    Stm.setContentionManager(Config.Cm);
  TraceCollector Collector(Config.Threads);
  std::unique_ptr<GuideController> Controller;

  TxEventObserver *Downstream =
      Config.CollectTrace ? &Collector : nullptr;
  if (Policy) {
    Controller =
        std::make_unique<GuideController>(*Policy, Config.Guide, Downstream);
    if (Config.Learner)
      Controller->setTtsSink(Config.Learner);
    Stm.setObserver(Controller.get());
    Stm.setGate(Controller.get());
  } else {
    Stm.setObserver(Downstream);
  }

  Workload.setup(Stm, Config.Threads, Seed);

  RunResult Result;
  Result.ThreadSeconds.assign(Config.Threads, 0.0);

  Barrier Start(Config.Threads + 1);
  std::vector<std::thread> Workers;
  Workers.reserve(Config.Threads);
  for (unsigned T = 0; T < Config.Threads; ++T) {
    Workers.emplace_back([&, T] {
      Start.arriveAndWait();
      double CpuStart = threadCpuSeconds();
      Workload.threadBody(Stm, static_cast<ThreadId>(T));
      Result.ThreadSeconds[T] = threadCpuSeconds() - CpuStart;
    });
  }

  Timer WallTimer;
  Start.arriveAndWait();
  for (std::thread &W : Workers)
    W.join();
  Result.WallSeconds = WallTimer.elapsedSeconds();

  // Workers have joined, so the shard aggregate is exact.
  Result.Telemetry = Stm.stats().aggregate();
  Result.Commits = Result.Telemetry.Commits;
  Result.Aborts = Result.Telemetry.Aborts;
  Result.ThreadTelemetry.reserve(Config.Threads);
  for (unsigned T = 0; T < Config.Threads && T < ShardedStats::numShards();
       ++T)
    Result.ThreadTelemetry.push_back(
        Stm.stats().snapshotShard(static_cast<size_t>(T)));
  if (Config.CollectTrace) {
    Result.ThreadHists = Collector.abortHistograms();
    Result.Tuples = groupTuples(Collector.takeTrace(), Config.GroupMode);
  }
  if (Controller)
    Result.Guide = Controller->stats();

  Result.Verified = Workload.verify(Stm);
  Workload.teardown();
  return Result;
}
