//===- core/Tts.cpp --------------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "core/Tts.h"

#include <algorithm>

using namespace gstm;

void StateTuple::canonicalize() {
  std::sort(Aborts.begin(), Aborts.end());
  Aborts.erase(std::unique(Aborts.begin(), Aborts.end()), Aborts.end());
}

static void appendPair(std::string &Out, TxThreadPair P) {
  TxId Tx = pairTx(P);
  if (Tx < 26)
    Out += static_cast<char>('a' + Tx);
  else {
    Out += 't';
    Out += std::to_string(Tx);
  }
  Out += std::to_string(pairThread(P));
}

std::string StateTuple::format() const {
  std::string Out = "{";
  if (!Aborts.empty()) {
    Out += "<";
    for (size_t I = 0; I < Aborts.size(); ++I) {
      if (I != 0)
        Out += ' ';
      appendPair(Out, Aborts[I]);
    }
    Out += ">, ";
  }
  Out += "<";
  appendPair(Out, Commit);
  Out += ">}";
  return Out;
}

size_t StateTupleHash::operator()(const StateTuple &S) const {
  // FNV-1a over the commit pair and the canonical abort list.
  uint64_t H = 0xcbf29ce484222325ULL;
  auto Mix = [&H](uint32_t V) {
    H ^= V;
    H *= 0x100000001b3ULL;
  };
  Mix(S.Commit);
  for (TxThreadPair P : S.Aborts)
    Mix(P);
  return static_cast<size_t>(H);
}
