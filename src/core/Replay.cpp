//===- core/Replay.cpp ------------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "core/Replay.h"

#include <chrono>
#include <thread>

using namespace gstm;

void ReplayGate::onTxStart(ThreadId Thread, TxId Tx) {
  TxThreadPair Self = packPair(Tx, Thread);
  for (uint32_t Retry = 0;; ++Retry) {
    size_t At = Cursor.load(std::memory_order_acquire);
    if (At >= Schedule.size())
      return; // past the recorded window: run free
    if (Schedule[At] == Self)
      return; // our turn
    if (Retry >= Cfg.MaxGateRetries) {
      Divergences.fetch_add(1, std::memory_order_relaxed);
      return; // progress guarantee
    }
    if (Cfg.GateSleepMicros == 0)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(
          std::chrono::microseconds(Cfg.GateSleepMicros));
  }
}

void ReplayGate::onCommit(const CommitEvent &E) {
  size_t At = Cursor.load(std::memory_order_acquire);
  if (At < Schedule.size() && Schedule[At] == packPair(E.Tx, E.Thread))
    Cursor.fetch_add(1, std::memory_order_acq_rel);
  // An off-schedule commit (possible after a forced release) does not
  // advance the cursor; the schedule re-synchronizes when the expected
  // pair commits.
}
