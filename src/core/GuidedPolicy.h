//===- core/GuidedPolicy.h - Compiled guidance policy --------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guided-execution policy compiled from a validated model (paper
/// Secs. V/VI): for every state s, the set D(s) of high-probability
/// destination states (probability >= Pmax/Tfactor) is reduced to the set
/// of (transaction, thread) pairs that appear — as commit *or* abort — in
/// any tuple of D(s). A thread starting transaction a is allowed to
/// proceed from state s iff <a,thread> is in that set. The compiled form
/// is one hash-set probe per check, the analogue of the paper's "model is
/// cut down ... stored in an efficient bitwise structure" with hash-map
/// destination lookup.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CORE_GUIDEDPOLICY_H
#define GSTM_CORE_GUIDEDPOLICY_H

#include "core/Analyzer.h"
#include "core/Tsa.h"

#include <memory>
#include <unordered_set>
#include <vector>

namespace gstm {

/// Immutable, shareable guidance policy. Build once after model analysis;
/// consult concurrently from all workers.
class GuidedPolicy {
public:
  /// Compiles the policy from \p Model with the paper's threshold rule
  /// Ph/Tfactor. The model is copied into the policy so the policy owns
  /// everything it needs.
  GuidedPolicy(Tsa Model, double Tfactor);

  /// True when (transaction, thread) pair \p P may start while the system
  /// is in state \p Current. Unknown states always allow.
  bool allows(StateId Current, TxThreadPair P) const {
    if (Current == UnknownState || Current >= Allowed.size())
      return true;
    const PairSet &Set = Allowed[Current];
    // A state with no recorded outbound transitions gives no guidance.
    if (Set.Pairs.empty())
      return true;
    return Set.Pairs.count(P) != 0;
  }

  /// Maps an observed tuple to a model state (UnknownState when the model
  /// never saw it; guided execution then lets threads run freely until the
  /// system re-enters a known state, per the paper).
  StateId resolve(const StateTuple &S) const {
    auto Id = Model.lookup(S);
    return Id ? *Id : UnknownState;
  }

  const Tsa &model() const { return Model; }
  double tfactor() const { return Tfactor; }

  /// Number of allowed pairs for \p State (exposed for tests/benches).
  size_t allowedPairCount(StateId State) const {
    return State < Allowed.size() ? Allowed[State].Pairs.size() : 0;
  }

private:
  struct PairSet {
    std::unordered_set<TxThreadPair> Pairs;
  };

  Tsa Model;
  double Tfactor;
  std::vector<PairSet> Allowed;
};

} // namespace gstm

#endif // GSTM_CORE_GUIDEDPOLICY_H
