//===- core/Experiment.cpp -------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

using namespace gstm;

namespace {

/// Accumulator for one side's measurement runs.
struct SideCollector {
  explicit SideCollector(unsigned Threads) {
    Agg.ThreadTimes.resize(Threads);
    Agg.ThreadHists.resize(Threads);
  }

  void add(const RunResult &R) {
    for (size_t T = 0; T < Agg.ThreadTimes.size(); ++T) {
      Agg.ThreadTimes[T].add(R.ThreadSeconds[T]);
      if (T < R.ThreadHists.size())
        Agg.ThreadHists[T].merge(R.ThreadHists[T]);
    }
    for (const StateTuple &S : R.Tuples)
      Distinct.insert(S);
    WallSum += R.WallSeconds;
    ++Runs;
    Agg.TotalCommits += R.Commits;
    Agg.TotalAborts += R.Aborts;
    Agg.Telemetry.merge(R.Telemetry);
    Agg.Guide.GateChecks += R.Guide.GateChecks;
    Agg.Guide.Holds += R.Guide.Holds;
    Agg.Guide.GateRetries += R.Guide.GateRetries;
    Agg.Guide.ForcedReleases += R.Guide.ForcedReleases;
    Agg.Guide.UnknownStates += R.Guide.UnknownStates;
    Agg.Guide.KnownStates += R.Guide.KnownStates;
    Agg.Guide.PolicySwaps += R.Guide.PolicySwaps;
    Agg.AllVerified = Agg.AllVerified && R.Verified;
  }

  SideAggregate finish() {
    Agg.DistinctStates = Distinct.size();
    Agg.MeanWallSeconds = Runs ? WallSum / Runs : 0.0;
    return std::move(Agg);
  }

  SideAggregate Agg;
  std::unordered_set<StateTuple, StateTupleHash> Distinct;
  double WallSum = 0.0;
  unsigned Runs = 0;
};

/// Measures the default and (optionally) guided sides with *interleaved*
/// runs of the *same* input.
///
/// Same input: the paper's variance is the run-to-run spread of identical
/// work caused purely by speculation non-determinism; varying the input
/// would measure input sensitivity instead. Interleaved: slow drift of
/// the host (frequency scaling, co-tenants, allocator state) then affects
/// both sides equally instead of biasing whichever side ran last.
void measureSides(TlWorkload &Workload, const ExperimentConfig &Config,
                  const GuidedPolicy *Policy, SideAggregate &DefaultOut,
                  SideAggregate &GuidedOut) {
  RunnerConfig RC = Config.Runner;
  RC.Threads = Config.Threads;
  RC.GroupMode = Config.GroupMode;

  // Warm-up pass (cold caches / first-touch page faults would otherwise
  // land entirely in the first measured run).
  if (Config.MeasureRuns > 0)
    runWorkloadOnce(Workload, RC, Config.MeasureSeedBase, nullptr);

  SideCollector Default(Config.Threads);
  SideCollector Guided(Config.Threads);
  for (unsigned Run = 0; Run < Config.MeasureRuns; ++Run) {
    Default.add(
        runWorkloadOnce(Workload, RC, Config.MeasureSeedBase, nullptr));
    if (Policy)
      Guided.add(
          runWorkloadOnce(Workload, RC, Config.MeasureSeedBase, Policy));
  }
  DefaultOut = Default.finish();
  GuidedOut = Guided.finish();
}

/// Phases 3+4 shared by the cold (profile-first) and warm-start
/// pipelines: analyze whatever model \p Result carries, then measure.
void analyzeAndMeasure(TlWorkload &MeasureWorkload,
                       const ExperimentConfig &Config,
                       ExperimentResult &Result) {
  // Phase 3: analyze.
  AnalyzerConfig AC = Config.Analyzer;
  AC.Tfactor = Config.Tfactor;
  if (AC.MinStates == 0)
    AC.MinStates = 6 * Config.Threads;
  Result.Report = analyzeModel(Result.Model, AC);

  // Phase 4: measurement — default always, guided unless the analyzer
  // said "non-optimizable" (ForceGuided overrides, for Figure 8).
  if (Result.Report.Optimizable || Config.ForceGuided) {
    GuidedPolicy Policy(Result.Model, Config.Tfactor);
    measureSides(MeasureWorkload, Config, &Policy, Result.Default,
                 Result.Guided);
    Result.GuidedRan = true;
  } else {
    measureSides(MeasureWorkload, Config, /*Policy=*/nullptr,
                 Result.Default, Result.Guided);
  }
}

} // namespace

ExperimentResult gstm::runExperiment(TlWorkload &ProfileWorkload,
                                     TlWorkload &MeasureWorkload,
                                     const ExperimentConfig &Config) {
  ExperimentResult Result;

  // Phase 1+2: profile and build the model (paper Fig. 1 left half).
  for (unsigned Run = 0; Run < Config.ProfileRuns; ++Run) {
    RunnerConfig RC = Config.Runner;
    RC.Threads = Config.Threads;
    RC.GroupMode = Config.GroupMode;
    RunResult R = runWorkloadOnce(ProfileWorkload, RC,
                                  Config.ProfileSeedBase + Run,
                                  /*Policy=*/nullptr);
    Result.Model.addRun(R.Tuples);
    Result.ProfileCommits += R.Commits;
    ++Result.ProfileRunsExecuted;
  }

  analyzeAndMeasure(MeasureWorkload, Config, Result);
  return Result;
}

ExperimentResult gstm::runExperimentWithModel(TlWorkload &MeasureWorkload,
                                              const ExperimentConfig &Config,
                                              Tsa Model) {
  ExperimentResult Result;
  // Warm start: the model arrives pretrained (typically loaded from a
  // model store), so the profiling phase is skipped outright —
  // ProfileCommits stays zero, which tests use to prove no profiling
  // transactions ran.
  Result.Model = std::move(Model);
  analyzeAndMeasure(MeasureWorkload, Config, Result);
  return Result;
}

ExperimentResult gstm::runExperiment(TlWorkload &Workload,
                                     const ExperimentConfig &Config) {
  return runExperiment(Workload, Workload, Config);
}

std::vector<double> ExperimentResult::varianceImprovementPercent() const {
  std::vector<double> Out;
  size_t N = Default.ThreadTimes.size();
  Out.reserve(N);
  for (size_t T = 0; T < N; ++T) {
    double Base = Default.ThreadTimes[T].stddev();
    double Opt =
        T < Guided.ThreadTimes.size() ? Guided.ThreadTimes[T].stddev() : 0.0;
    Out.push_back(percentImprovement(Base, Opt));
  }
  return Out;
}

std::vector<double> ExperimentResult::tailImprovementPercent() const {
  std::vector<double> Out;
  size_t N = Default.ThreadHists.size();
  Out.reserve(N);
  for (size_t T = 0; T < N; ++T) {
    double Base = Default.ThreadHists[T].tailMetric();
    double Opt =
        T < Guided.ThreadHists.size() ? Guided.ThreadHists[T].tailMetric()
                                      : 0.0;
    Out.push_back(percentImprovement(Base, Opt));
  }
  return Out;
}

double ExperimentResult::meanTailImprovementPercent() const {
  std::vector<double> Per = tailImprovementPercent();
  // percentImprovement is NaN for an undefined ratio (zero baseline,
  // non-zero optimized); average only the defined entries.
  double Sum = 0.0;
  size_t Defined = 0;
  for (double V : Per) {
    if (std::isnan(V))
      continue;
    Sum += V;
    ++Defined;
  }
  if (Defined == 0)
    return 0.0;
  return Sum / static_cast<double>(Defined);
}

double ExperimentResult::nondeterminismReductionPercent() const {
  return percentImprovement(static_cast<double>(Default.DistinctStates),
                            static_cast<double>(Guided.DistinctStates));
}

double ExperimentResult::slowdownFactor() const {
  if (Default.MeanWallSeconds == 0.0)
    return 1.0;
  return Guided.MeanWallSeconds / Default.MeanWallSeconds;
}

static double abortRatio(const SideAggregate &Side) {
  uint64_t Total = Side.TotalCommits + Side.TotalAborts;
  if (Total == 0)
    return 0.0;
  return static_cast<double>(Side.TotalAborts) / static_cast<double>(Total);
}

double ExperimentResult::defaultAbortRatio() const {
  return abortRatio(Default);
}

double ExperimentResult::guidedAbortRatio() const {
  return abortRatio(Guided);
}
