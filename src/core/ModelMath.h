//===- core/ModelMath.h - Shared edge-probability math -------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two model computations every TSA consumer repeats, extracted to one
/// place so they cannot drift apart:
///
///  * frequency -> probability normalization (Algorithm 1's
///    `P(e_i) = f(e_i) / sum f(e_j)`), including the canonical ordering
///    (descending probability, ties by ascending destination id) that
///    makes "the head edge is Pmax" true everywhere, and
///  * the paper's high-probability destination selection D(s): the prefix
///    of edges whose probability is at least `Pmax / Tfactor` (Sec. IV).
///
/// Consumers: Tsa::successors (normalization), the Analyzer and
/// GuidedPolicy via highProbabilitySuccessors (selection), the drift
/// detector's windowed guidance metric, the online learner's snapshot
/// compilation, and tools/model_inspect. A unit test in
/// tests/model_lifecycle_test.cpp pins the old (pre-extraction) code
/// paths and these helpers to identical results.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CORE_MODELMATH_H
#define GSTM_CORE_MODELMATH_H

#include "core/Tts.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace gstm {

/// One outbound edge of a TSA state. Probability is always derived from
/// Count via normalizeEdgeProbabilities — it is never stored or
/// serialized independently, so the two cannot disagree.
struct TsaEdge {
  StateId Dest;
  uint64_t Count;
  double Probability;
};

/// Fills every edge's Probability with Count / sum(Counts) and sorts the
/// edges into the canonical order: descending probability, ties broken by
/// ascending destination id. With all counts zero every probability is 0.
inline void normalizeEdgeProbabilities(std::vector<TsaEdge> &Edges) {
  uint64_t Total = 0;
  for (const TsaEdge &E : Edges)
    Total += E.Count;
  for (TsaEdge &E : Edges)
    E.Probability = Total ? static_cast<double>(E.Count) /
                                static_cast<double>(Total)
                          : 0.0;
  std::sort(Edges.begin(), Edges.end(),
            [](const TsaEdge &A, const TsaEdge &B) {
              if (A.Probability != B.Probability)
                return A.Probability > B.Probability;
              return A.Dest < B.Dest;
            });
}

/// Length of the high-probability prefix D(s) of \p Edges: the edges with
/// probability >= Pmax / Tfactor. \p Edges must already be in the
/// canonical normalized order (head edge = Pmax).
inline size_t highProbabilityPrefix(const std::vector<TsaEdge> &Edges,
                                    double Tfactor) {
  assert(Tfactor >= 1.0 && "Tfactor below 1 would reject the best edge");
  if (Edges.empty())
    return 0;
  double Threshold = Edges.front().Probability / Tfactor;
  size_t Keep = 0;
  while (Keep < Edges.size() && Edges[Keep].Probability >= Threshold)
    ++Keep;
  return Keep;
}

/// The paper's D(s) as a value: \p Edges truncated to the
/// high-probability prefix.
inline std::vector<TsaEdge> selectHighProbability(std::vector<TsaEdge> Edges,
                                                  double Tfactor) {
  Edges.resize(highProbabilityPrefix(Edges, Tfactor));
  return Edges;
}

} // namespace gstm

#endif // GSTM_CORE_MODELMATH_H
