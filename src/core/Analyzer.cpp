//===- core/Analyzer.cpp ---------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"

using namespace gstm;

std::vector<TsaEdge> gstm::highProbabilitySuccessors(const Tsa &Model,
                                                     StateId State,
                                                     double Tfactor) {
  // successors() returns the canonical normalized order, so the shared
  // prefix selection (core/ModelMath.h) applies directly.
  return selectHighProbability(Model.successors(State), Tfactor);
}

AnalyzerReport gstm::analyzeModel(const Tsa &Model,
                                  const AnalyzerConfig &Config) {
  AnalyzerReport Report;
  Report.NumStates = Model.numStates();
  Report.NumTransitions = Model.numTransitions();

  uint64_t TotalOut = 0;
  uint64_t TotalGuided = 0;
  size_t StatesWithEdges = 0;
  for (StateId S = 0; S < Model.numStates(); ++S) {
    std::vector<TsaEdge> Out = Model.successors(S);
    if (Out.empty())
      continue;
    ++StatesWithEdges;
    TotalOut += Out.size();
    TotalGuided +=
        highProbabilitySuccessors(Model, S, Config.Tfactor).size();
  }

  if (TotalOut != 0)
    Report.GuidanceMetricPercent =
        100.0 * static_cast<double>(TotalGuided) /
        static_cast<double>(TotalOut);
  if (StatesWithEdges != 0) {
    Report.MeanOutDegree = static_cast<double>(TotalOut) /
                           static_cast<double>(StatesWithEdges);
    Report.MeanGuidedOutDegree = static_cast<double>(TotalGuided) /
                                 static_cast<double>(StatesWithEdges);
  }

  Report.Optimizable =
      Report.NumStates >= Config.MinStates && TotalOut != 0 &&
      Report.GuidanceMetricPercent < Config.MetricRejectThreshold;
  return Report;
}
