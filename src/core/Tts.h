//===- core/Tts.h - Thread transactional state tuples ---------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central abstraction: a *thread transactional state* (TTS)
/// captures the outcome of one commit in a concurrently transacting
/// application — the (transaction, thread) pair that committed together
/// with the (transaction, thread) pairs it caused to abort. In the paper's
/// notation, `{<a1 c2 e5>, <c3>}` means thread 3 committed transaction c,
/// aborting thread 1 in a, thread 2 in c and thread 5 in e; `{<c3>}` alone
/// is an uncontended commit.
///
/// The total number of *distinct* TTSes exercised by an application is the
/// paper's measure of non-determinism (Sec. II-B).
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CORE_TTS_H
#define GSTM_CORE_TTS_H

#include "support/Ids.h"

#include <cstddef>
#include <string>
#include <vector>

namespace gstm {

/// A dense identifier assigned to an interned state tuple.
using StateId = uint32_t;

/// Sentinel for "not a state known to the model".
inline constexpr StateId UnknownState = ~StateId{0};

/// One thread transactional state: a commit plus the aborts grouped with
/// it. Always store via canonicalize() so equal states compare equal.
struct StateTuple {
  /// The committing (transaction, thread) pair.
  TxThreadPair Commit = 0;
  /// The aborted (transaction, thread) pairs, sorted ascending after
  /// canonicalize(). Duplicates are kept collapsed: the *set* of aborted
  /// thread-transactions defines the state, matching the paper's tuples
  /// which list each aborted thread once per commit.
  std::vector<TxThreadPair> Aborts;

  /// Sorts and deduplicates the abort set.
  void canonicalize();

  bool operator==(const StateTuple &Other) const {
    return Commit == Other.Commit && Aborts == Other.Aborts;
  }

  /// Renders the paper's notation, e.g. "{<a1 b2>, <d4>}". Transaction ids
  /// 0..25 print as letters a..z; larger ids print as t<id>.
  std::string format() const;
};

/// Hash functor for interning state tuples.
struct StateTupleHash {
  size_t operator()(const StateTuple &S) const;
};

} // namespace gstm

#endif // GSTM_CORE_TTS_H
