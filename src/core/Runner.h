//===- core/Runner.h - Single-run execution driver ------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes one run of a workload — default or guided — and collects what
/// the paper measures: per-thread execution time of the thread function,
/// per-thread abort histograms, the grouped thread-transactional-state
/// sequence, and gate statistics for guided runs.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CORE_RUNNER_H
#define GSTM_CORE_RUNNER_H

#include "core/GuideController.h"
#include "core/Trace.h"
#include "core/Workload.h"
#include "support/Stats.h"

#include <cstdint>
#include <vector>

namespace gstm {

/// STM configuration used by experiment runs: scheduler perturbation on
/// (see Tl2Config::PreemptShift) so transactions overlap even when the
/// host has fewer cores than workers.
inline Tl2Config experimentStmConfig() {
  Tl2Config Cfg;
  Cfg.PreemptShift = 5;
  // Attempt-latency sampling is cheap (two steady_clock reads per attempt
  // on a thread-private shard) and feeds the exported telemetry.
  Cfg.TrackAttemptLatency = true;
  return Cfg;
}

/// Per-run configuration shared by default and guided executions.
struct RunnerConfig {
  unsigned Threads = 8;
  Grouping GroupMode = Grouping::Sequence;
  Tl2Config Stm = experimentStmConfig();
  GuideConfig Guide;
  /// Optional contention manager installed into the run's STM (baseline
  /// comparisons); must outlive the run. Not owned.
  ContentionManager *Cm = nullptr;
  /// When false, the event trace is not recorded (lowest overhead; used
  /// for pure timing comparisons).
  bool CollectTrace = true;
  /// Optional online-learning ingest hook (model/OnlineLearner.h)
  /// attached to guided runs' GuideController; must outlive the run. Not
  /// owned. Ignored for unguided runs (no controller forms tuples).
  TtsSink *Learner = nullptr;
};

/// Everything measured during one run.
struct RunResult {
  /// Execution time of each worker's thread function, in seconds. On a
  /// host with at least as many cores as workers this is wall time, the
  /// paper's metric. When workers time-share cores, every thread's wall
  /// time collapses to the global run duration and the per-thread
  /// variance channel disappears, so the runner records per-thread *CPU*
  /// time instead — it still reflects the thread's own committed and
  /// aborted work (see DESIGN.md, substitutions).
  std::vector<double> ThreadSeconds;
  /// Per-thread distribution of aborts-before-commit.
  std::vector<AbortHistogram> ThreadHists;
  /// Thread-transactional-state sequence of the run (empty when trace
  /// collection is off).
  std::vector<StateTuple> Tuples;
  uint64_t Commits = 0;
  uint64_t Aborts = 0;
  /// Aggregated sharded telemetry of the run: abort breakdown by cause
  /// and site, retries-before-commit histogram, attempt latency.
  /// Commits/Aborts above are its totals, kept as separate fields for
  /// existing consumers.
  StatsSnapshot Telemetry;
  /// Per-thread shard snapshots, indexed by ThreadId (shard index ==
  /// ThreadId while Threads <= StatsShardCount, which covers every
  /// configuration the experiments use).
  std::vector<StatsSnapshot> ThreadTelemetry;
  double WallSeconds = 0.0;
  /// Gate counters (all zero for unguided runs).
  GuideStats Guide;
  /// Result of the workload's own invariant check.
  bool Verified = true;
};

/// Runs \p Workload once with \p Config on input \p Seed. When \p Policy
/// is non-null the run is guided by it; otherwise it is a default run.
RunResult runWorkloadOnce(TlWorkload &Workload, const RunnerConfig &Config,
                          uint64_t Seed, const GuidedPolicy *Policy);

} // namespace gstm

#endif // GSTM_CORE_RUNNER_H
