//===- core/JsonExport.cpp -------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "core/JsonExport.h"

#include <cstdio>

using namespace gstm;

namespace {

/// The flat counters shared by the aggregate and per-thread objects.
void writeSnapshotFields(JsonWriter &W, const StatsSnapshot &S) {
  W.key("commits").value(S.Commits);
  W.key("read_only_commits").value(S.ReadOnlyCommits);
  W.key("aborts").value(S.Aborts);

  W.key("abort_causes").beginObject();
  for (size_t C = 0; C < NumAbortCauses; ++C)
    W.key(abortCauseName(static_cast<AbortCauseKind>(C)))
        .value(S.AbortsByCause[C]);
  W.endObject();

  W.key("abort_sites").beginObject();
  for (size_t I = 0; I < NumAbortSites; ++I)
    W.key(abortSiteName(static_cast<AbortSite>(I))).value(S.AbortsBySite[I]);
  W.endObject();

  W.key("retry_histogram").beginArray();
  for (size_t B = 0; B < RetryHistogramBuckets; ++B)
    W.value(S.RetryHistogram[B]);
  W.endArray();

  W.key("attempts").value(S.Attempts);
  W.key("attempt_nanos").value(S.AttemptNanos);
  W.key("commit_ring_lookups").value(S.CommitRingLookups);
  W.key("commit_ring_misses").value(S.CommitRingMisses);
  W.key("cross_shard_commits").value(S.CrossShardCommits);
  W.key("cross_shard_aborts").value(S.CrossShardAborts);
  W.key("prepare_retries").value(S.PrepareRetries);
}

void writeGuideStats(JsonWriter &W, const GuideStats &G) {
  W.beginObject();
  W.key("gate_checks").value(G.GateChecks);
  W.key("holds").value(G.Holds);
  W.key("forced_releases").value(G.ForcedReleases);
  W.key("unknown_states").value(G.UnknownStates);
  W.key("known_states").value(G.KnownStates);
  W.endObject();
}

void writeSideAggregate(JsonWriter &W, const SideAggregate &Side) {
  W.beginObject();
  W.key("mean_wall_seconds").value(Side.MeanWallSeconds);
  W.key("distinct_states").value(static_cast<uint64_t>(Side.DistinctStates));
  W.key("all_verified").value(Side.AllVerified);

  W.key("thread_time_stddev").beginArray();
  for (const RunningStat &S : Side.ThreadTimes)
    W.value(S.stddev());
  W.endArray();

  W.key("thread_tail_metric").beginArray();
  for (const AbortHistogram &H : Side.ThreadHists)
    W.value(H.tailMetric());
  W.endArray();

  W.key("guide");
  writeGuideStats(W, Side.Guide);

  W.key("telemetry");
  writeTelemetryJson(W, Side.Telemetry, {});
  W.endObject();
}

} // namespace

void gstm::writeTelemetryJson(JsonWriter &W, const StatsSnapshot &Agg,
                              const std::vector<StatsSnapshot> &PerThread) {
  W.beginObject();
  writeSnapshotFields(W, Agg);
  if (!PerThread.empty()) {
    W.key("per_thread").beginArray();
    for (size_t T = 0; T < PerThread.size(); ++T) {
      // Threads that never ran a transaction still get an entry so the
      // array index equals the ThreadId.
      W.beginObject();
      W.key("thread").value(static_cast<uint64_t>(T));
      writeSnapshotFields(W, PerThread[T]);
      W.endObject();
    }
    W.endArray();
  }
  W.endObject();
}

std::string gstm::runResultJson(const RunResult &R) {
  JsonWriter W;
  W.beginObject();
  W.key("wall_seconds").value(R.WallSeconds);
  W.key("verified").value(R.Verified);

  W.key("thread_seconds").beginArray();
  for (double S : R.ThreadSeconds)
    W.value(S);
  W.endArray();

  W.key("guide");
  writeGuideStats(W, R.Guide);

  W.key("telemetry");
  writeTelemetryJson(W, R.Telemetry, R.ThreadTelemetry);
  W.endObject();
  return W.take();
}

std::string gstm::experimentJson(const ExperimentResult &R) {
  JsonWriter W;
  W.beginObject();

  W.key("analyzer").beginObject();
  W.key("guidance_metric_percent").value(R.Report.GuidanceMetricPercent);
  W.key("num_states").value(static_cast<uint64_t>(R.Report.NumStates));
  W.key("num_transitions").value(R.Report.NumTransitions);
  W.key("mean_out_degree").value(R.Report.MeanOutDegree);
  W.key("mean_guided_out_degree").value(R.Report.MeanGuidedOutDegree);
  W.key("optimizable").value(R.Report.Optimizable);
  W.endObject();

  W.key("guided_ran").value(R.GuidedRan);
  W.key("default");
  writeSideAggregate(W, R.Default);
  W.key("guided");
  writeSideAggregate(W, R.Guided);

  // Derived metrics; NaN entries render as null per JsonWriter.
  W.key("variance_improvement_percent").beginArray();
  for (double V : R.varianceImprovementPercent())
    W.value(V);
  W.endArray();
  W.key("tail_improvement_percent").beginArray();
  for (double V : R.tailImprovementPercent())
    W.value(V);
  W.endArray();
  W.key("mean_tail_improvement_percent")
      .value(R.meanTailImprovementPercent());
  W.key("nondeterminism_reduction_percent")
      .value(R.nondeterminismReductionPercent());
  W.key("slowdown_factor").value(R.slowdownFactor());
  W.key("default_abort_ratio").value(R.defaultAbortRatio());
  W.key("guided_abort_ratio").value(R.guidedAbortRatio());

  W.endObject();
  return W.take();
}

bool gstm::writeTextFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size();
  return std::fclose(F) == 0 && Ok;
}

std::optional<std::string> gstm::readTextFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return std::nullopt;
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  if (!Ok)
    return std::nullopt;
  return Out;
}

std::optional<StatsSnapshot> gstm::snapshotFromJson(const JsonValue &V) {
  if (!V.isObject())
    return std::nullopt;
  const JsonValue *Commits = V.find("commits");
  const JsonValue *Aborts = V.find("aborts");
  const JsonValue *Causes = V.find("abort_causes");
  const JsonValue *Sites = V.find("abort_sites");
  const JsonValue *Hist = V.find("retry_histogram");
  if (!Commits || !Aborts || !Causes || !Sites || !Hist ||
      !Causes->isObject() || !Sites->isObject() || !Hist->isArray())
    return std::nullopt;

  StatsSnapshot S;
  S.Commits = Commits->asU64();
  S.Aborts = Aborts->asU64();
  if (const JsonValue *Ro = V.find("read_only_commits"))
    S.ReadOnlyCommits = Ro->asU64();
  for (size_t C = 0; C < NumAbortCauses; ++C)
    if (const JsonValue *N =
            Causes->find(abortCauseName(static_cast<AbortCauseKind>(C))))
      S.AbortsByCause[C] = N->asU64();
  for (size_t I = 0; I < NumAbortSites; ++I)
    if (const JsonValue *N =
            Sites->find(abortSiteName(static_cast<AbortSite>(I))))
      S.AbortsBySite[I] = N->asU64();
  for (size_t B = 0; B < Hist->Items.size() && B < RetryHistogramBuckets;
       ++B)
    S.RetryHistogram[B] = Hist->Items[B].asU64();
  if (const JsonValue *A = V.find("attempts"))
    S.Attempts = A->asU64();
  if (const JsonValue *N = V.find("attempt_nanos"))
    S.AttemptNanos = N->asU64();
  if (const JsonValue *N = V.find("commit_ring_lookups"))
    S.CommitRingLookups = N->asU64();
  if (const JsonValue *N = V.find("commit_ring_misses"))
    S.CommitRingMisses = N->asU64();
  if (const JsonValue *N = V.find("cross_shard_commits"))
    S.CrossShardCommits = N->asU64();
  if (const JsonValue *N = V.find("cross_shard_aborts"))
    S.CrossShardAborts = N->asU64();
  if (const JsonValue *N = V.find("prepare_retries"))
    S.PrepareRetries = N->asU64();
  return S;
}
