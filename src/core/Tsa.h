//===- core/Tsa.h - Thread state automaton (the model) -------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thread state automaton (TSA) of paper Sec. III: states are interned
/// thread transactional states; an edge s -> d is weighted by the observed
/// transition frequency, and its probability is the frequency divided by
/// the sum of all outbound frequencies of s (Algorithm 1). The model is
/// built from the tuple sequences of one or more profiling runs and can be
/// serialized to disk, mirroring the paper's offline `state_data` model
/// files.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CORE_TSA_H
#define GSTM_CORE_TSA_H

#include "core/Tts.h"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace gstm {

/// One outbound edge of a TSA state.
struct TsaEdge {
  StateId Dest;
  uint64_t Count;
  double Probability;
};

/// The probabilistic thread state automaton.
class Tsa {
public:
  /// Adds one profiling run's tuple sequence: interns every state and
  /// counts the transitions between consecutive tuples. Runs are
  /// independent; no transition is counted across run boundaries.
  void addRun(const std::vector<StateTuple> &Run);

  /// Number of distinct states in the model (paper Table III).
  size_t numStates() const { return States.size(); }

  /// Total transition observations.
  uint64_t numTransitions() const { return TotalTransitions; }

  const StateTuple &state(StateId Id) const { return States[Id]; }

  /// Returns the id of \p S if the model knows it.
  std::optional<StateId> lookup(const StateTuple &S) const;

  /// Outbound edges of \p Id with probabilities normalized over the
  /// state's total outbound frequency, sorted by descending probability.
  std::vector<TsaEdge> successors(StateId Id) const;

  /// Sum of outbound frequencies of \p Id.
  uint64_t outFrequency(StateId Id) const;

  /// Serializes the model to \p Path. Returns false on I/O failure.
  bool save(const std::string &Path) const;

  /// Deserializes a model previously written by save().
  static std::optional<Tsa> load(const std::string &Path);

  /// Approximate in-memory footprint in bytes (paper quotes model sizes;
  /// reported by the table benches).
  size_t approxSizeBytes() const;

private:
  StateId intern(const StateTuple &S);

  std::vector<StateTuple> States;
  std::unordered_map<StateTuple, StateId, StateTupleHash> Index;
  /// Transitions[s]: dest -> count.
  std::vector<std::unordered_map<StateId, uint64_t>> Transitions;
  std::vector<uint64_t> OutTotals;
  uint64_t TotalTransitions = 0;
};

} // namespace gstm

#endif // GSTM_CORE_TSA_H
