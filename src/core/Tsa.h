//===- core/Tsa.h - Thread state automaton (the model) -------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thread state automaton (TSA) of paper Sec. III: states are interned
/// thread transactional states; an edge s -> d is weighted by the observed
/// transition frequency, and its probability is the frequency divided by
/// the sum of all outbound frequencies of s (Algorithm 1). The model is
/// built from the tuple sequences of one or more profiling runs, or
/// reconstructed state-by-state via internState/addTransition — the
/// surface the model lifecycle subsystem (model/Serialize.h,
/// model/OnlineLearner.h) uses to rebuild a Tsa from persisted or
/// incrementally learned frequencies. On-disk persistence itself lives in
/// model/Serialize.h (versioned, checksummed), not here.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CORE_TSA_H
#define GSTM_CORE_TSA_H

#include "core/ModelMath.h"
#include "core/Tts.h"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace gstm {

/// The probabilistic thread state automaton.
class Tsa {
public:
  /// Adds one profiling run's tuple sequence: interns every state and
  /// counts the transitions between consecutive tuples. Runs are
  /// independent; no transition is counted across run boundaries.
  void addRun(const std::vector<StateTuple> &Run);

  /// Interns \p S (which must be canonicalized) and returns its dense id.
  /// Building block for reconstruction from serialized or learned
  /// frequencies; addRun is built on it.
  StateId internState(const StateTuple &S) { return intern(S); }

  /// Adds \p Count observations of the transition \p From -> \p To. Both
  /// ids must have been returned by internState/lookup.
  void addTransition(StateId From, StateId To, uint64_t Count);

  /// Number of distinct states in the model (paper Table III).
  size_t numStates() const { return States.size(); }

  /// Total transition observations.
  uint64_t numTransitions() const { return TotalTransitions; }

  const StateTuple &state(StateId Id) const { return States[Id]; }

  /// Returns the id of \p S if the model knows it.
  std::optional<StateId> lookup(const StateTuple &S) const;

  /// Outbound edges of \p Id with probabilities normalized over the
  /// state's total outbound frequency, in the canonical order of
  /// core/ModelMath.h (descending probability, ties by destination id).
  std::vector<TsaEdge> successors(StateId Id) const;

  /// Sum of outbound frequencies of \p Id.
  uint64_t outFrequency(StateId Id) const;

  /// Approximate in-memory footprint in bytes (paper quotes model sizes;
  /// reported by the table benches).
  size_t approxSizeBytes() const;

private:
  StateId intern(const StateTuple &S);

  std::vector<StateTuple> States;
  std::unordered_map<StateTuple, StateId, StateTupleHash> Index;
  /// Transitions[s]: dest -> count.
  std::vector<std::unordered_map<StateId, uint64_t>> Transitions;
  std::vector<uint64_t> OutTotals;
  uint64_t TotalTransitions = 0;
};

} // namespace gstm

#endif // GSTM_CORE_TSA_H
