//===- core/Tsa.cpp --------------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "core/Tsa.h"

#include <algorithm>
#include <cassert>
#include <fstream>

using namespace gstm;

StateId Tsa::intern(const StateTuple &S) {
  auto It = Index.find(S);
  if (It != Index.end())
    return It->second;
  StateId Id = static_cast<StateId>(States.size());
  States.push_back(S);
  Index.emplace(S, Id);
  Transitions.emplace_back();
  OutTotals.push_back(0);
  return Id;
}

void Tsa::addRun(const std::vector<StateTuple> &Run) {
  StateId Prev = UnknownState;
  for (const StateTuple &S : Run) {
    StateId Cur = intern(S);
    if (Prev != UnknownState) {
      ++Transitions[Prev][Cur];
      ++OutTotals[Prev];
      ++TotalTransitions;
    }
    Prev = Cur;
  }
}

std::optional<StateId> Tsa::lookup(const StateTuple &S) const {
  auto It = Index.find(S);
  if (It == Index.end())
    return std::nullopt;
  return It->second;
}

std::vector<TsaEdge> Tsa::successors(StateId Id) const {
  assert(Id < States.size() && "state id out of range");
  std::vector<TsaEdge> Edges;
  uint64_t Total = OutTotals[Id];
  Edges.reserve(Transitions[Id].size());
  for (const auto &[Dest, Count] : Transitions[Id])
    Edges.push_back(TsaEdge{Dest, Count,
                            Total ? static_cast<double>(Count) /
                                        static_cast<double>(Total)
                                  : 0.0});
  std::sort(Edges.begin(), Edges.end(),
            [](const TsaEdge &A, const TsaEdge &B) {
              if (A.Probability != B.Probability)
                return A.Probability > B.Probability;
              return A.Dest < B.Dest;
            });
  return Edges;
}

uint64_t Tsa::outFrequency(StateId Id) const {
  assert(Id < States.size() && "state id out of range");
  return OutTotals[Id];
}

namespace {
constexpr uint64_t ModelMagic = 0x4753544d2d545341ULL; // "GSTM-TSA"

template <typename T> void writeRaw(std::ofstream &Out, const T &V) {
  Out.write(reinterpret_cast<const char *>(&V), sizeof(T));
}

template <typename T> bool readRaw(std::ifstream &In, T &V) {
  In.read(reinterpret_cast<char *>(&V), sizeof(T));
  return static_cast<bool>(In);
}
} // namespace

bool Tsa::save(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  writeRaw(Out, ModelMagic);
  writeRaw(Out, static_cast<uint64_t>(States.size()));
  for (const StateTuple &S : States) {
    writeRaw(Out, S.Commit);
    writeRaw(Out, static_cast<uint32_t>(S.Aborts.size()));
    for (TxThreadPair P : S.Aborts)
      writeRaw(Out, P);
  }
  for (size_t I = 0; I < States.size(); ++I) {
    writeRaw(Out, static_cast<uint32_t>(Transitions[I].size()));
    for (const auto &[Dest, Count] : Transitions[I]) {
      writeRaw(Out, Dest);
      writeRaw(Out, Count);
    }
  }
  return static_cast<bool>(Out);
}

std::optional<Tsa> Tsa::load(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  uint64_t Magic = 0;
  if (!readRaw(In, Magic) || Magic != ModelMagic)
    return std::nullopt;
  uint64_t NumStates = 0;
  if (!readRaw(In, NumStates))
    return std::nullopt;

  Tsa Model;
  for (uint64_t I = 0; I < NumStates; ++I) {
    StateTuple S;
    uint32_t NumAborts = 0;
    if (!readRaw(In, S.Commit) || !readRaw(In, NumAborts))
      return std::nullopt;
    S.Aborts.resize(NumAborts);
    for (uint32_t A = 0; A < NumAborts; ++A)
      if (!readRaw(In, S.Aborts[A]))
        return std::nullopt;
    StateId Id = Model.intern(S);
    if (Id != I)
      return std::nullopt; // duplicate state in file: corrupt
  }
  for (uint64_t I = 0; I < NumStates; ++I) {
    uint32_t NumEdges = 0;
    if (!readRaw(In, NumEdges))
      return std::nullopt;
    for (uint32_t E = 0; E < NumEdges; ++E) {
      StateId Dest = 0;
      uint64_t Count = 0;
      if (!readRaw(In, Dest) || !readRaw(In, Count) || Dest >= NumStates)
        return std::nullopt;
      Model.Transitions[I][Dest] += Count;
      Model.OutTotals[I] += Count;
      Model.TotalTransitions += Count;
    }
  }
  return Model;
}

size_t Tsa::approxSizeBytes() const {
  size_t Bytes = 0;
  for (const StateTuple &S : States)
    Bytes += sizeof(StateTuple) + S.Aborts.size() * sizeof(TxThreadPair);
  for (const auto &Map : Transitions)
    Bytes += Map.size() * (sizeof(StateId) + sizeof(uint64_t) + 16);
  Bytes += States.size() * (sizeof(uint64_t) + 48); // index + totals
  return Bytes;
}
