//===- core/Tsa.cpp --------------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "core/Tsa.h"

#include <cassert>

using namespace gstm;

StateId Tsa::intern(const StateTuple &S) {
  auto It = Index.find(S);
  if (It != Index.end())
    return It->second;
  StateId Id = static_cast<StateId>(States.size());
  States.push_back(S);
  Index.emplace(S, Id);
  Transitions.emplace_back();
  OutTotals.push_back(0);
  return Id;
}

void Tsa::addRun(const std::vector<StateTuple> &Run) {
  StateId Prev = UnknownState;
  for (const StateTuple &S : Run) {
    StateId Cur = intern(S);
    if (Prev != UnknownState)
      addTransition(Prev, Cur, 1);
    Prev = Cur;
  }
}

void Tsa::addTransition(StateId From, StateId To, uint64_t Count) {
  assert(From < States.size() && To < States.size() &&
         "transition endpoints must be interned states");
  Transitions[From][To] += Count;
  OutTotals[From] += Count;
  TotalTransitions += Count;
}

std::optional<StateId> Tsa::lookup(const StateTuple &S) const {
  auto It = Index.find(S);
  if (It == Index.end())
    return std::nullopt;
  return It->second;
}

std::vector<TsaEdge> Tsa::successors(StateId Id) const {
  assert(Id < States.size() && "state id out of range");
  std::vector<TsaEdge> Edges;
  Edges.reserve(Transitions[Id].size());
  for (const auto &[Dest, Count] : Transitions[Id])
    Edges.push_back(TsaEdge{Dest, Count, 0.0});
  normalizeEdgeProbabilities(Edges);
  return Edges;
}

uint64_t Tsa::outFrequency(StateId Id) const {
  assert(Id < States.size() && "state id out of range");
  return OutTotals[Id];
}

size_t Tsa::approxSizeBytes() const {
  size_t Bytes = 0;
  for (const StateTuple &S : States)
    Bytes += sizeof(StateTuple) + S.Aborts.size() * sizeof(TxThreadPair);
  for (const auto &Map : Transitions)
    Bytes += Map.size() * (sizeof(StateId) + sizeof(uint64_t) + 16);
  Bytes += States.size() * (sizeof(uint64_t) + 48); // index + totals
  return Bytes;
}
