//===- core/GuideController.cpp --------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "core/GuideController.h"

#include <chrono>
#include <thread>

using namespace gstm;

void GuideController::onTxStart(ThreadId Thread, TxId Tx) {
  GateChecks.fetch_add(1, std::memory_order_relaxed);
  TxThreadPair Self = packPair(Tx, Thread);

  StateId State = Current.load(std::memory_order_acquire);
  if (Policy.allows(State, Self))
    return;

  Holds.fetch_add(1, std::memory_order_relaxed);
  for (uint32_t Retry = 0; Retry < Cfg.MaxGateRetries; ++Retry) {
    GateRetries.fetch_add(1, std::memory_order_relaxed);
    // Let the threads that *are* allowed make progress; one of their
    // commits may move the current state to one that admits us.
    if (Cfg.GateSleepMicros == 0)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(
          std::chrono::microseconds(Cfg.GateSleepMicros));
    State = Current.load(std::memory_order_acquire);
    if (Policy.allows(State, Self))
      return;
  }
  // k retries exhausted: release to guarantee progress (paper Sec. V).
  ForcedReleases.fetch_add(1, std::memory_order_relaxed);
}

void GuideController::onCommit(const CommitEvent &E) {
  StateTuple Tuple;
  Tuple.Commit = packPair(E.Tx, E.Thread);
  // Keep the PendingMutex critical section to an O(1) buffer swap: the
  // old move-out handed PendingAborts' heap buffer to the tuple, forcing
  // the next onAbort to reallocate under the lock. Swapping with a
  // per-thread scratch vector (capacity retained across commits) keeps
  // both the swap and the steady-state aborts allocation-free.
  static thread_local std::vector<TxThreadPair> Scratch;
  Scratch.clear();
  {
    std::lock_guard<std::mutex> Lock(PendingMutex);
    Scratch.swap(PendingAborts);
  }
  Tuple.Aborts.assign(Scratch.begin(), Scratch.end());
  Tuple.canonicalize();

  StateId Resolved = Policy.resolve(Tuple);
  if (Resolved == UnknownState)
    UnknownStates.fetch_add(1, std::memory_order_relaxed);
  else
    KnownStates.fetch_add(1, std::memory_order_relaxed);
  Current.store(Resolved, std::memory_order_release);

  if (Downstream)
    Downstream->onCommit(E);
}

void GuideController::onAbort(const AbortEvent &E) {
  {
    std::lock_guard<std::mutex> Lock(PendingMutex);
    PendingAborts.push_back(packPair(E.Tx, E.Thread));
  }
  if (Downstream)
    Downstream->onAbort(E);
}

GuideStats GuideController::stats() const {
  GuideStats S;
  S.GateChecks = GateChecks.load(std::memory_order_relaxed);
  S.Holds = Holds.load(std::memory_order_relaxed);
  S.GateRetries = GateRetries.load(std::memory_order_relaxed);
  S.ForcedReleases = ForcedReleases.load(std::memory_order_relaxed);
  S.UnknownStates = UnknownStates.load(std::memory_order_relaxed);
  S.KnownStates = KnownStates.load(std::memory_order_relaxed);
  return S;
}
