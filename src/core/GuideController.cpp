//===- core/GuideController.cpp --------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "core/GuideController.h"

#include <chrono>
#include <thread>

using namespace gstm;

GuideController::GuideController(std::shared_ptr<const GuidedPolicy> Policy,
                                 const GuideConfig &Config,
                                 TxEventObserver *Downstream)
    : Cfg(Config), Downstream(Downstream) {
  Active.store(Policy.get(), std::memory_order_release);
  Retained.push_back(std::move(Policy));
  // Pre-size so early aborts don't grow the vector while PendingMutex
  // is held; onCommit's swap recycles buffers from then on.
  PendingAborts.reserve(64);
}

void GuideController::publishPolicy(
    std::shared_ptr<const GuidedPolicy> NewPolicy) {
  if (!NewPolicy)
    return;
  std::lock_guard<std::mutex> Lock(PublishMutex);
  // State ids are snapshot-relative; the current state resolved against
  // the old model must not index the new one. Reset to UnknownState —
  // the next commit re-resolves against the fresh snapshot.
  Current.store(UnknownState, std::memory_order_release);
  Active.store(NewPolicy.get(), std::memory_order_release);
  Retained.push_back(std::move(NewPolicy));
  PolicySwaps.fetch_add(1, std::memory_order_relaxed);
}

void GuideController::onTxStart(ThreadId Thread, TxId Tx) {
  GateChecks.fetch_add(1, std::memory_order_relaxed);
  // Drift-disarmed: degrade to plain TL2 — no holds, no retries.
  if (!GatingEnabled.load(std::memory_order_acquire))
    return;
  TxThreadPair Self = packPair(Tx, Thread);

  const GuidedPolicy *Policy = Active.load(std::memory_order_acquire);
  StateId State = Current.load(std::memory_order_acquire);
  if (Policy->allows(State, Self))
    return;

  Holds.fetch_add(1, std::memory_order_relaxed);
  for (uint32_t Retry = 0; Retry < Cfg.MaxGateRetries; ++Retry) {
    GateRetries.fetch_add(1, std::memory_order_relaxed);
    // Let the threads that *are* allowed make progress; one of their
    // commits may move the current state to one that admits us.
    if (Cfg.GateSleepMicros == 0)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(
          std::chrono::microseconds(Cfg.GateSleepMicros));
    if (!GatingEnabled.load(std::memory_order_acquire))
      return; // disarmed while held: release immediately
    Policy = Active.load(std::memory_order_acquire);
    State = Current.load(std::memory_order_acquire);
    if (Policy->allows(State, Self))
      return;
  }
  // k retries exhausted: release to guarantee progress (paper Sec. V).
  ForcedReleases.fetch_add(1, std::memory_order_relaxed);
}

void GuideController::onCommit(const CommitEvent &E) {
  StateTuple Tuple;
  Tuple.Commit = packPair(E.Tx, E.Thread);
  // Keep the PendingMutex critical section to an O(1) buffer swap: the
  // old move-out handed PendingAborts' heap buffer to the tuple, forcing
  // the next onAbort to reallocate under the lock. Swapping with a
  // per-thread scratch vector (capacity retained across commits) keeps
  // both the swap and the steady-state aborts allocation-free.
  static thread_local std::vector<TxThreadPair> Scratch;
  Scratch.clear();
  uint64_t Seq;
  {
    std::lock_guard<std::mutex> Lock(PendingMutex);
    Scratch.swap(PendingAborts);
    Seq = TupleSeq++;
  }
  Tuple.Aborts.assign(Scratch.begin(), Scratch.end());
  Tuple.canonicalize();

  const GuidedPolicy *Policy = Active.load(std::memory_order_acquire);
  StateId Resolved = Policy->resolve(Tuple);
  if (Resolved == UnknownState)
    UnknownStates.fetch_add(1, std::memory_order_relaxed);
  else
    KnownStates.fetch_add(1, std::memory_order_relaxed);
  Current.store(Resolved, std::memory_order_release);

  // Online-learning hook: null-gated so a detached learner costs one
  // predictable branch, the same discipline as the access observer.
  if (TtsSink *S = Sink.load(std::memory_order_acquire))
    S->observeTuple(E.Thread, Seq, Tuple);

  if (Downstream)
    Downstream->onCommit(E);
}

void GuideController::onAbort(const AbortEvent &E) {
  {
    std::lock_guard<std::mutex> Lock(PendingMutex);
    PendingAborts.push_back(packPair(E.Tx, E.Thread));
  }
  if (Downstream)
    Downstream->onAbort(E);
}

GuideStats GuideController::stats() const {
  GuideStats S;
  S.GateChecks = GateChecks.load(std::memory_order_relaxed);
  S.Holds = Holds.load(std::memory_order_relaxed);
  S.GateRetries = GateRetries.load(std::memory_order_relaxed);
  S.ForcedReleases = ForcedReleases.load(std::memory_order_relaxed);
  S.UnknownStates = UnknownStates.load(std::memory_order_relaxed);
  S.KnownStates = KnownStates.load(std::memory_order_relaxed);
  S.PolicySwaps = PolicySwaps.load(std::memory_order_relaxed);
  return S;
}
