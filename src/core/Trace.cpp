//===- core/Trace.cpp ------------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "core/Trace.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace gstm;

void TraceCollector::onCommit(const CommitEvent &E) {
  assert(E.Thread < PerThread.size() && "thread id out of range");
  TraceEvent Ev;
  Ev.Seq = NextSeq.fetch_add(1, std::memory_order_relaxed);
  Ev.Version = E.Version;
  Ev.Thread = E.Thread;
  Ev.Tx = E.Tx;
  Ev.IsCommit = true;
  Ev.ReadOnly = E.ReadOnly;
  Ev.PriorAborts = E.PriorAborts;
  PerThread[E.Thread].Events.push_back(Ev);
}

void TraceCollector::onAbort(const AbortEvent &E) {
  assert(E.Thread < PerThread.size() && "thread id out of range");
  TraceEvent Ev;
  Ev.Seq = NextSeq.fetch_add(1, std::memory_order_relaxed);
  Ev.Version = E.CauseVersion;
  Ev.Thread = E.Thread;
  Ev.Tx = E.Tx;
  Ev.IsCommit = false;
  Ev.Kind = E.Kind;
  Ev.Cause = E.Cause;
  PerThread[E.Thread].Events.push_back(Ev);
}

std::vector<TraceEvent> TraceCollector::takeTrace() {
  std::vector<TraceEvent> Merged;
  size_t Total = 0;
  for (const Buffer &B : PerThread)
    Total += B.Events.size();
  Merged.reserve(Total);
  for (Buffer &B : PerThread) {
    Merged.insert(Merged.end(), B.Events.begin(), B.Events.end());
    B.Events.clear();
  }
  std::sort(Merged.begin(), Merged.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              return A.Seq < B.Seq;
            });
  return Merged;
}

std::vector<AbortHistogram> TraceCollector::abortHistograms() const {
  std::vector<AbortHistogram> Hists(PerThread.size());
  for (size_t T = 0; T < PerThread.size(); ++T)
    for (const TraceEvent &E : PerThread[T].Events)
      if (E.IsCommit)
        Hists[T].add(E.PriorAborts);
  return Hists;
}

void TraceCollector::reset() {
  for (Buffer &B : PerThread)
    B.Events.clear();
  NextSeq.store(0, std::memory_order_relaxed);
}

/// Sequence mode: every commit absorbs the aborts logged since the
/// previous commit. Trailing aborts with no subsequent commit are dropped,
/// as in the paper's Tseq parsing.
static std::vector<StateTuple>
groupSequence(const std::vector<TraceEvent> &Trace) {
  std::vector<StateTuple> Tuples;
  std::vector<TxThreadPair> Pending;
  for (const TraceEvent &E : Trace) {
    if (!E.IsCommit) {
      Pending.push_back(packPair(E.Tx, E.Thread));
      continue;
    }
    StateTuple S;
    S.Commit = packPair(E.Tx, E.Thread);
    S.Aborts = std::move(Pending);
    Pending.clear();
    S.canonicalize();
    Tuples.push_back(std::move(S));
  }
  return Tuples;
}

/// Causal mode: each abort attaches to the commit that caused it.
static std::vector<StateTuple>
groupCausal(const std::vector<TraceEvent> &Trace) {
  // Index the commits.
  std::vector<size_t> CommitIdx;                      // trace index per commit
  std::unordered_map<uint64_t, size_t> ByVersion;     // wv -> tuple index
  std::unordered_map<TxThreadPair, std::vector<size_t>> ByPair;
  for (size_t I = 0; I < Trace.size(); ++I) {
    const TraceEvent &E = Trace[I];
    if (!E.IsCommit)
      continue;
    size_t Tuple = CommitIdx.size();
    CommitIdx.push_back(I);
    // Read-only commits install no version; indexing them would map a
    // conflicting writer's version onto an unrelated reader commit.
    if (!E.ReadOnly)
      ByVersion.emplace(E.Version, Tuple);
    ByPair[packPair(E.Tx, E.Thread)].push_back(Tuple);
  }

  // Binary search: first tuple whose commit event follows trace index I.
  auto NextTupleAfter = [&](size_t I) -> size_t {
    auto It = std::upper_bound(CommitIdx.begin(), CommitIdx.end(), I);
    return static_cast<size_t>(It - CommitIdx.begin());
  };

  std::vector<std::vector<TxThreadPair>> Aborts(CommitIdx.size());
  for (size_t I = 0; I < Trace.size(); ++I) {
    const TraceEvent &E = Trace[I];
    if (E.IsCommit)
      continue;
    TxThreadPair Victim = packPair(E.Tx, E.Thread);
    size_t Tuple = CommitIdx.size(); // sentinel: unattributed

    if (E.Kind == AbortCauseKind::KnownCommitter && E.Version != 0) {
      // The conflicting write version maps directly to its commit.
      auto It = ByVersion.find(E.Version);
      if (It != ByVersion.end())
        Tuple = It->second;
    } else if (E.Kind == AbortCauseKind::KnownCommitter) {
      // We collided with a lock holder that had not committed yet: charge
      // the holder's next commit after this abort.
      auto It = ByPair.find(E.Cause);
      if (It != ByPair.end()) {
        size_t Lo = NextTupleAfter(I);
        auto TIt = std::lower_bound(It->second.begin(), It->second.end(), Lo);
        if (TIt != It->second.end())
          Tuple = *TIt;
      }
    }
    if (Tuple == CommitIdx.size()) {
      // Fallback (explicit retries, stale ring entries): next commit in
      // sequence order, as in Sequence mode.
      Tuple = NextTupleAfter(I);
      if (Tuple == CommitIdx.size())
        continue; // trailing abort with no later commit: drop
    }
    Aborts[Tuple].push_back(Victim);
  }

  std::vector<StateTuple> Tuples;
  Tuples.reserve(CommitIdx.size());
  for (size_t T = 0; T < CommitIdx.size(); ++T) {
    const TraceEvent &E = Trace[CommitIdx[T]];
    StateTuple S;
    S.Commit = packPair(E.Tx, E.Thread);
    S.Aborts = std::move(Aborts[T]);
    S.canonicalize();
    Tuples.push_back(std::move(S));
  }
  return Tuples;
}

std::vector<StateTuple> gstm::groupTuples(const std::vector<TraceEvent> &Trace,
                                          Grouping Mode) {
  switch (Mode) {
  case Grouping::Sequence:
    return groupSequence(Trace);
  case Grouping::Causal:
    return groupCausal(Trace);
  }
  return {};
}
