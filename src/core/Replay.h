//===- core/Replay.h - Deterministic record/replay (DeSTM-style) ---------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A record/replay facility in the spirit of DeSTM (Ravichandran,
/// Gavrilovska, Pande, PACT'14), which the paper cites as the
/// *fully deterministic* end of the design space: where guided execution
/// biases runs toward probable commit paths, replay pins the commit order
/// exactly. It reuses the same hooks guided execution plugs into — the
/// commit observer records the (transaction, thread) commit sequence, and
/// the start gate of a replay run blocks every thread whose pair is not
/// next in the recorded schedule.
///
/// The result is useful for debugging (the paper's motivation for DeSTM)
/// and doubles as the strongest possible setting of the paper's
/// determinism spectrum: replayed runs exercise exactly one thread
/// transactional state sequence.
///
/// Caveat: a schedule is only replayable against the same input and
/// workload; transactions absent from the schedule (tail of a run that
/// diverged) are released after MaxGateRetries like the guided gate, so
/// progress is always guaranteed.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CORE_REPLAY_H
#define GSTM_CORE_REPLAY_H

#include "stm/Observer.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace gstm {

/// Records the global commit order of a run.
class CommitRecorder : public TxEventObserver {
public:
  void onCommit(const CommitEvent &E) override {
    std::lock_guard<std::mutex> Lock(M);
    Schedule.push_back(packPair(E.Tx, E.Thread));
  }
  void onAbort(const AbortEvent &) override {}

  /// The recorded (transaction, thread) commit sequence.
  std::vector<TxThreadPair> takeSchedule() {
    std::lock_guard<std::mutex> Lock(M);
    return std::move(Schedule);
  }

private:
  std::mutex M;
  std::vector<TxThreadPair> Schedule;
};

/// Tunables of the replay gate.
struct ReplayConfig {
  /// Gate re-checks before an off-schedule transaction is released (the
  /// progress guarantee; matches the guided gate's k).
  uint32_t MaxGateRetries = 4096;
  /// Microseconds to sleep between re-checks (0 = yield).
  uint32_t GateSleepMicros = 0;
};

/// Enforces a recorded commit schedule: each thread may only start a
/// transaction when its (transaction, thread) pair is next in line.
class ReplayGate : public StartGate, public TxEventObserver {
public:
  ReplayGate(std::vector<TxThreadPair> Schedule,
             const ReplayConfig &Config = ReplayConfig())
      : Schedule(std::move(Schedule)), Cfg(Config) {}

  void onTxStart(ThreadId Thread, TxId Tx) override;

  // Observer half: commits advance the schedule cursor.
  void onCommit(const CommitEvent &E) override;
  void onAbort(const AbortEvent &) override {}

  /// Position in the schedule (for tests).
  size_t cursor() const { return Cursor.load(std::memory_order_acquire); }
  /// Starts that had to be force-released (off-schedule divergence).
  uint64_t divergences() const {
    return Divergences.load(std::memory_order_relaxed);
  }

private:
  std::vector<TxThreadPair> Schedule;
  ReplayConfig Cfg;
  std::atomic<size_t> Cursor{0};
  std::atomic<uint64_t> Divergences{0};
};

} // namespace gstm

#endif // GSTM_CORE_REPLAY_H
