//===- core/GuideController.h - Online guided-execution controller -------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime half of guided execution (paper Sec. V, Fig. 2). The
/// controller plugs into an STM as both StartGate and TxEventObserver:
///
///  * As observer it tracks the *current* thread transactional state: each
///    commit closes a tuple (commit + aborts logged since the previous
///    commit) which is resolved against the model. Unknown tuples set the
///    current state to UnknownState so execution proceeds unimpeded until
///    a known state is re-entered, exactly as the paper prescribes for
///    states the training runs never captured.
///
///  * As gate it withholds a thread whose (transaction, thread) pair is
///    not part of any high-probability destination of the current state,
///    re-checking as concurrent commits move the current state. After k
///    unsuccessful re-checks the thread is released to avoid deadlock and
///    ensure progress (the paper's k-retry rule).
///
/// Events are forwarded to an optional downstream observer so profiling
/// metrics can still be collected during guided runs.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CORE_GUIDECONTROLLER_H
#define GSTM_CORE_GUIDECONTROLLER_H

#include "core/GuidedPolicy.h"
#include "core/Trace.h"
#include "stm/Observer.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace gstm {

/// Tunables of the online controller.
struct GuideConfig {
  /// The paper's k: gate re-checks before a held thread is force-released.
  uint32_t MaxGateRetries = 8;
  /// Sleep between gate re-checks, in microseconds; 0 means yield only.
  /// A real sleep (rather than a yield loop) frees the CPU for the
  /// threads that can move the current state forward and, unlike
  /// spinning, consumes no CPU time in the held thread — so the gate does
  /// not pollute the per-thread execution-time metric it exists to
  /// stabilize.
  uint32_t GateSleepMicros = 20;
};

/// Counters describing what the gate did during a run.
struct GuideStats {
  uint64_t GateChecks = 0;
  /// Gate invocations that were held back at least once.
  uint64_t Holds = 0;
  /// Total gate re-checks across all holds. A hold that is eventually
  /// admitted contributes the retries it waited; a forced release
  /// contributes exactly MaxGateRetries.
  uint64_t GateRetries = 0;
  /// Holds that exhausted k retries and were force-released.
  uint64_t ForcedReleases = 0;
  /// Commits whose tuple was not in the model (current state unknown).
  uint64_t UnknownStates = 0;
  uint64_t KnownStates = 0;
};

/// Online guided-execution controller. One instance per guided run.
class GuideController : public StartGate, public TxEventObserver {
public:
  /// \p Policy must outlive the controller. \p Downstream (optional)
  /// receives every event after state tracking.
  GuideController(const GuidedPolicy &Policy, const GuideConfig &Config,
                  TxEventObserver *Downstream = nullptr)
      : Policy(Policy), Cfg(Config), Downstream(Downstream) {
    // Pre-size so early aborts don't grow the vector while PendingMutex
    // is held; onCommit's swap recycles buffers from then on.
    PendingAborts.reserve(64);
  }

  // StartGate: hold low-probability transactions back.
  void onTxStart(ThreadId Thread, TxId Tx) override;

  // TxEventObserver: track the current state.
  void onCommit(const CommitEvent &E) override;
  void onAbort(const AbortEvent &E) override;

  /// Current state as last resolved (UnknownState before the first commit
  /// and after any unmodeled tuple).
  StateId currentState() const {
    return Current.load(std::memory_order_acquire);
  }

  /// Snapshot of the gate counters. Not synchronized with running
  /// workers; call after the run has quiesced for exact values.
  GuideStats stats() const;

private:
  const GuidedPolicy &Policy;
  GuideConfig Cfg;
  TxEventObserver *Downstream;

  std::atomic<StateId> Current{UnknownState};

  /// Serializes tuple formation. Aborts/commits are frequent but short;
  /// the workloads' transaction bodies dominate.
  std::mutex PendingMutex;
  std::vector<TxThreadPair> PendingAborts;

  std::atomic<uint64_t> GateChecks{0};
  std::atomic<uint64_t> Holds{0};
  std::atomic<uint64_t> GateRetries{0};
  std::atomic<uint64_t> ForcedReleases{0};
  std::atomic<uint64_t> UnknownStates{0};
  std::atomic<uint64_t> KnownStates{0};
};

} // namespace gstm

#endif // GSTM_CORE_GUIDECONTROLLER_H
