//===- core/GuideController.h - Online guided-execution controller -------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime half of guided execution (paper Sec. V, Fig. 2). The
/// controller plugs into an STM as both StartGate and TxEventObserver:
///
///  * As observer it tracks the *current* thread transactional state: each
///    commit closes a tuple (commit + aborts logged since the previous
///    commit) which is resolved against the model. Unknown tuples set the
///    current state to UnknownState so execution proceeds unimpeded until
///    a known state is re-entered, exactly as the paper prescribes for
///    states the training runs never captured.
///
///  * As gate it withholds a thread whose (transaction, thread) pair is
///    not part of any high-probability destination of the current state,
///    re-checking as concurrent commits move the current state. After k
///    unsuccessful re-checks the thread is released to avoid deadlock and
///    ensure progress (the paper's k-retry rule).
///
/// Model lifecycle extensions (model/ subsystem):
///
///  * The policy is held as an atomically swapped immutable snapshot:
///    publishPolicy() retires the current snapshot and installs a new one
///    with a single pointer exchange, so the online learner can re-train
///    the model mid-run while gate checks and commit resolution proceed
///    lock-free (readers do one acquire load; retired snapshots stay
///    alive until the controller is destroyed, bounding reclamation
///    without reader coordination).
///  * A TtsSink (the online learner's ingest surface) receives every
///    formed tuple, null-gated the same way as the STM's access-observer
///    hook so a detached learner costs one predictable branch per commit.
///  * setGatingEnabled() lets the drift detector degrade guidance to
///    plain TL2 (no holds, no gate retries) when the live model stops
///    discriminating, and re-arm it when bias returns.
///
/// Events are forwarded to an optional downstream observer so profiling
/// metrics can still be collected during guided runs.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CORE_GUIDECONTROLLER_H
#define GSTM_CORE_GUIDECONTROLLER_H

#include "core/GuidedPolicy.h"
#include "core/Trace.h"
#include "stm/Observer.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace gstm {

/// Tunables of the online controller.
struct GuideConfig {
  /// The paper's k: gate re-checks before a held thread is force-released.
  uint32_t MaxGateRetries = 8;
  /// Sleep between gate re-checks, in microseconds; 0 means yield only.
  /// A real sleep (rather than a yield loop) frees the CPU for the
  /// threads that can move the current state forward and, unlike
  /// spinning, consumes no CPU time in the held thread — so the gate does
  /// not pollute the per-thread execution-time metric it exists to
  /// stabilize.
  uint32_t GateSleepMicros = 20;
};

/// Counters describing what the gate did during a run.
struct GuideStats {
  uint64_t GateChecks = 0;
  /// Gate invocations that were held back at least once.
  uint64_t Holds = 0;
  /// Total gate re-checks across all holds. A hold that is eventually
  /// admitted contributes the retries it waited; a forced release
  /// contributes exactly MaxGateRetries.
  uint64_t GateRetries = 0;
  /// Holds that exhausted k retries and were force-released.
  uint64_t ForcedReleases = 0;
  /// Commits whose tuple was not in the model (current state unknown).
  uint64_t UnknownStates = 0;
  uint64_t KnownStates = 0;
  /// Number of policy snapshots installed via publishPolicy().
  uint64_t PolicySwaps = 0;
};

/// Consumer of the commit-time TTS observation stream (implemented by
/// model/OnlineLearner.h). \p Seq is a dense global tuple-formation
/// sequence so a consumer draining per-thread buffers can restore the
/// commit order the tuples were formed in. Called on the committing
/// worker thread; implementations must be thread-safe across threads and
/// must not block (the commit path runs through here).
class TtsSink {
public:
  virtual ~TtsSink() = default;
  virtual void observeTuple(ThreadId Thread, uint64_t Seq,
                            const StateTuple &Tuple) = 0;
};

/// Online guided-execution controller. One instance per guided run.
class GuideController : public StartGate, public TxEventObserver {
public:
  /// Shares ownership of \p Policy; publishPolicy() may replace it later.
  /// \p Downstream (optional) receives every event after state tracking.
  GuideController(std::shared_ptr<const GuidedPolicy> Policy,
                  const GuideConfig &Config,
                  TxEventObserver *Downstream = nullptr);

  /// Non-owning convenience for the offline pipeline: \p Policy must
  /// outlive the controller.
  GuideController(const GuidedPolicy &Policy, const GuideConfig &Config,
                  TxEventObserver *Downstream = nullptr)
      : GuideController(
            std::shared_ptr<const GuidedPolicy>(
                std::shared_ptr<const GuidedPolicy>(), &Policy),
            Config, Downstream) {}

  /// Atomically installs \p NewPolicy as the active snapshot. Safe to
  /// call while workers are running: readers that already loaded the old
  /// snapshot finish their check against it; the old snapshot is retired
  /// (kept alive) rather than freed, so no reader ever dereferences a
  /// dead policy. Null is ignored.
  void publishPolicy(std::shared_ptr<const GuidedPolicy> NewPolicy);

  /// Policy snapshot current gate checks resolve against.
  const GuidedPolicy *activePolicy() const {
    return Active.load(std::memory_order_acquire);
  }

  /// Attaches the online learner's ingest hook (nullptr to detach, the
  /// default). Null-gated on the commit path.
  void setTtsSink(TtsSink *S) { Sink.store(S, std::memory_order_release); }

  /// Arms or disarms the gate. Disarmed, onTxStart returns immediately
  /// (no holds, no retries — execution degrades to plain TL2) while
  /// state tracking and the TTS stream continue, so the drift detector
  /// still sees fresh observations and can re-arm. On by default.
  void setGatingEnabled(bool Enabled) {
    GatingEnabled.store(Enabled, std::memory_order_release);
  }
  bool gatingEnabled() const {
    return GatingEnabled.load(std::memory_order_acquire);
  }

  // StartGate: hold low-probability transactions back.
  void onTxStart(ThreadId Thread, TxId Tx) override;

  // TxEventObserver: track the current state.
  void onCommit(const CommitEvent &E) override;
  void onAbort(const AbortEvent &E) override;

  /// Current state as last resolved (UnknownState before the first commit
  /// and after any unmodeled tuple). Only meaningful relative to the
  /// snapshot that resolved it; a policy swap resets it to UnknownState.
  StateId currentState() const {
    return Current.load(std::memory_order_acquire);
  }

  /// Snapshot of the gate counters. Not synchronized with running
  /// workers; call after the run has quiesced for exact values.
  GuideStats stats() const;

private:
  GuideConfig Cfg;
  TxEventObserver *Downstream;

  /// Lock-free reader side of the snapshot swap. Retained keeps every
  /// published snapshot alive until destruction (swaps are rare — one per
  /// learner publish — so the retired list stays small).
  std::atomic<const GuidedPolicy *> Active{nullptr};
  std::mutex PublishMutex;
  std::vector<std::shared_ptr<const GuidedPolicy>> Retained;

  std::atomic<TtsSink *> Sink{nullptr};
  std::atomic<bool> GatingEnabled{true};

  std::atomic<StateId> Current{UnknownState};

  /// Serializes tuple formation. Aborts/commits are frequent but short;
  /// the workloads' transaction bodies dominate.
  std::mutex PendingMutex;
  std::vector<TxThreadPair> PendingAborts;
  /// Tuple-formation order handed to the TtsSink; only written under
  /// PendingMutex.
  uint64_t TupleSeq = 0;

  std::atomic<uint64_t> GateChecks{0};
  std::atomic<uint64_t> Holds{0};
  std::atomic<uint64_t> GateRetries{0};
  std::atomic<uint64_t> ForcedReleases{0};
  std::atomic<uint64_t> UnknownStates{0};
  std::atomic<uint64_t> KnownStates{0};
  std::atomic<uint64_t> PolicySwaps{0};
};

} // namespace gstm

#endif // GSTM_CORE_GUIDECONTROLLER_H
