//===- core/Experiment.h - Full pipeline: profile/model/analyze/guide ----===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's four-phase framework (Fig. 1) end to end:
///
///   profile runs -> model generation -> model analysis -> guided runs
///                                              |
///                                       (reject: report only)
///
/// plus the paired *default* measurement runs against which variance,
/// non-determinism, abort tails and slowdown are compared. The result
/// object computes every derived metric the paper reports so each bench
/// binary only formats rows.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CORE_EXPERIMENT_H
#define GSTM_CORE_EXPERIMENT_H

#include "core/Analyzer.h"
#include "core/GuidedPolicy.h"
#include "core/Runner.h"

#include <vector>

namespace gstm {

/// Configuration of one full experiment.
struct ExperimentConfig {
  unsigned Threads = 8;
  /// Paper: model built from the Tseq of 20 runs; scaled down by default
  /// so the suite fits a small machine. Raise with --runs in the benches.
  unsigned ProfileRuns = 5;
  /// Paper: readings averaged over 20 runs.
  unsigned MeasureRuns = 7;
  double Tfactor = 4.0;
  Grouping GroupMode = Grouping::Sequence;
  /// MinStates = 0 selects the automatic bound 6 * Threads: a model made
  /// only of singleton-commit tuples (the ssca2 shape — about one state
  /// per thread per site plus a few rare abort tuples) carries no abort
  /// structure worth guiding.
  AnalyzerConfig Analyzer = {.Tfactor = 4.0,
                             .MetricRejectThreshold = 50.0,
                             .MinStates = 0};
  RunnerConfig Runner;
  uint64_t ProfileSeedBase = 1000;
  uint64_t MeasureSeedBase = 5000;
  /// Run the guided side even when the analyzer rejects the model (used
  /// to reproduce Figure 8, where guiding ssca2 anyway *degrades* it).
  bool ForceGuided = false;
};

/// Aggregated measurements of one side (default or guided).
struct SideAggregate {
  /// Per-thread execution-time samples across runs.
  std::vector<RunningStat> ThreadTimes;
  /// Per-thread abort histograms merged across runs.
  std::vector<AbortHistogram> ThreadHists;
  /// Distinct thread transactional states across all runs — the paper's
  /// non-determinism measure.
  size_t DistinctStates = 0;
  double MeanWallSeconds = 0.0;
  uint64_t TotalCommits = 0;
  uint64_t TotalAborts = 0;
  /// Sharded telemetry merged across all measurement runs of this side
  /// (TotalCommits/TotalAborts above equal its Commits/Aborts).
  StatsSnapshot Telemetry;
  GuideStats Guide;
  bool AllVerified = true;
};

/// Outcome of a full experiment.
struct ExperimentResult {
  Tsa Model;
  AnalyzerReport Report;
  SideAggregate Default;
  SideAggregate Guided;
  /// False when the analyzer rejected the model and ForceGuided was off;
  /// Guided is then empty.
  bool GuidedRan = false;
  /// Transactions committed during the profiling phase. Zero for
  /// warm-started experiments (runExperimentWithModel) — the acceptance
  /// signal that a pretrained model really skipped profiling.
  uint64_t ProfileCommits = 0;
  /// Number of profiling runs executed (0 when warm-started).
  unsigned ProfileRunsExecuted = 0;

  /// Per-thread % reduction of execution-time standard deviation
  /// (Figures 4 and 6; negative = degradation, Figure 8a/8c).
  std::vector<double> varianceImprovementPercent() const;

  /// Per-thread % improvement of the abort-tail metric (Table IV).
  std::vector<double> tailImprovementPercent() const;
  double meanTailImprovementPercent() const;

  /// % reduction in distinct states (Figure 9).
  double nondeterminismReductionPercent() const;

  /// Guided mean wall time / default mean wall time (Figure 10; > 1 means
  /// guided is slower).
  double slowdownFactor() const;

  /// Abort ratio (aborts / (commits + aborts)) per side; reduction is
  /// reported for SynQuake-style figures.
  double defaultAbortRatio() const;
  double guidedAbortRatio() const;
};

/// Runs the full pipeline. \p ProfileWorkload provides the training input
/// (the paper trains on medium inputs); \p MeasureWorkload provides the
/// evaluation input. They may be the same object.
ExperimentResult runExperiment(TlWorkload &ProfileWorkload,
                               TlWorkload &MeasureWorkload,
                               const ExperimentConfig &Config);

/// Convenience overload: same workload for training and evaluation.
ExperimentResult runExperiment(TlWorkload &Workload,
                               const ExperimentConfig &Config);

/// Warm-start pipeline: analysis and measurement against a pretrained
/// model (typically loaded from a model store — see model/Store.h). The
/// profiling phase is skipped entirely; Result.ProfileCommits == 0 and
/// Result.ProfileRunsExecuted == 0 certify that no profiling
/// transactions were executed.
ExperimentResult runExperimentWithModel(TlWorkload &MeasureWorkload,
                                        const ExperimentConfig &Config,
                                        Tsa Model);

} // namespace gstm

#endif // GSTM_CORE_EXPERIMENT_H
