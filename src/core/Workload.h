//===- core/Workload.h - Abstract transactional workload -----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface every TL2-based benchmark (the STAMP ports and synthetic
/// tests) implements so the profiling / model-generation / guided-
/// execution pipeline can drive it. A workload is re-set-up for every run
/// from a seed, keeping guided and default executions comparable on
/// identical inputs.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CORE_WORKLOAD_H
#define GSTM_CORE_WORKLOAD_H

#include "stm/Tl2.h"
#include "support/Ids.h"

#include <cstdint>
#include <string>

namespace gstm {

/// A multi-threaded transactional benchmark driven by the runner.
///
/// Lifecycle per run: setup() once (single-threaded), threadBody() once
/// per worker concurrently, then verify() and teardown() single-threaded.
class TlWorkload {
public:
  virtual ~TlWorkload() = default;

  /// Benchmark name as reported in tables (e.g. "kmeans").
  virtual std::string name() const = 0;

  /// Number of static transaction sites (TM_BEGIN ids) this workload
  /// contains. Site ids used by threadBody must be < this.
  virtual unsigned numTxSites() const = 0;

  /// Builds the shared state for one run. \p Seed determinizes input
  /// generation; the same seed must produce the same input.
  virtual void setup(Tl2Stm &Stm, unsigned NumThreads, uint64_t Seed) = 0;

  /// Body of worker \p Thread. Runs concurrently with all other workers;
  /// all shared accesses must go through the STM.
  virtual void threadBody(Tl2Stm &Stm, ThreadId Thread) = 0;

  /// Checks post-run invariants (single-threaded). Returns false on a
  /// correctness violation; the runner records it.
  virtual bool verify(Tl2Stm &Stm) {
    (void)Stm;
    return true;
  }

  /// Releases per-run state (single-threaded).
  virtual void teardown() {}
};

} // namespace gstm

#endif // GSTM_CORE_WORKLOAD_H
