//===- core/JsonExport.h - Run / experiment telemetry JSON ---------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON serialization of run results and experiment aggregates, including
/// the sharded telemetry (stm/StatsShard.h): commit/abort totals, the
/// abort breakdown by cause and by site, retries-before-commit
/// histograms, and attempt-latency sums. `tools/model_inspect --stats`
/// consumes these files and re-checks the breakdown invariants.
///
/// Telemetry schema (embedded under "telemetry" in run/experiment
/// documents, also valid standalone):
/// \code
/// {
///   "commits": N, "read_only_commits": N, "aborts": N,
///   "abort_causes": {"known_committer": N, "unknown_committer": N,
///                    "explicit": N},
///   "abort_sites":  {"read": N, "lock_acquire": N,
///                    "commit_validate": N, "explicit": N},
///   "retry_histogram": [N, ...],          // index = aborts before commit
///   "attempts": N, "attempt_nanos": N,
///   "per_thread": [{"thread": T, <same counters>}, ...]
/// }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_CORE_JSONEXPORT_H
#define GSTM_CORE_JSONEXPORT_H

#include "core/Experiment.h"
#include "core/Runner.h"
#include "support/Json.h"

#include <optional>
#include <string>
#include <vector>

namespace gstm {

/// Appends \p Agg (and optionally per-thread shards) as one telemetry
/// object to \p W.
void writeTelemetryJson(JsonWriter &W, const StatsSnapshot &Agg,
                        const std::vector<StatsSnapshot> &PerThread);

/// One run: wall/thread times, commit/abort totals, gate stats and the
/// telemetry object.
std::string runResultJson(const RunResult &R);

/// One full experiment: analyzer verdict, both sides' derived metrics and
/// telemetry.
std::string experimentJson(const ExperimentResult &R);

/// Writes \p Text to \p Path (truncating); false on I/O failure.
bool writeTextFile(const std::string &Path, const std::string &Text);

/// Reads all of \p Path; std::nullopt on I/O failure.
std::optional<std::string> readTextFile(const std::string &Path);

/// Reconstructs a snapshot from a telemetry JSON object (the inverse of
/// writeTelemetryJson for the flat counters; "per_thread" is ignored).
/// std::nullopt when \p V is not an object or lacks the counter fields.
std::optional<StatsSnapshot> snapshotFromJson(const JsonValue &V);

} // namespace gstm

#endif // GSTM_CORE_JSONEXPORT_H
