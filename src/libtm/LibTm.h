//===- libtm/LibTm.h - Object-based STM (LibTM reproduction) -------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reproduction of the LibTM configuration the paper uses for SynQuake
/// (Lupei et al., PPoPP'10): *object-granularity* conflict detection with
/// fully-optimistic reads (no read locks) and write locks acquired only at
/// commit, with conflicts resolved against readers (an optimistic reader
/// whose object was overwritten aborts — the "abort-readers" policy).
/// LibTM itself is closed source; this implementation reuses TL2's global
/// version clock for commit-time validation but keeps LibTM's defining
/// characteristics: metadata lives *inside each object* (no address
/// hashing, no false sharing between distinct objects, the property
/// SynQuake relies on) and objects are multi-word.
///
/// The same TxEventObserver / StartGate hooks as the TL2 runtime plug the
/// model layer in unchanged.
///
/// Usage:
/// \code
///   LibTm Tm;
///   TObj<PlayerState> Player;
///   LibTxn Txn(Tm, /*Thread=*/0);
///   Txn.run(/*Tx=*/0, [&](LibTxn &Tx) {
///     PlayerState S = Tx.read(Player);
///     S.Health -= 10;
///     Tx.write(Player, S);
///   });
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_LIBTM_LIBTM_H
#define GSTM_LIBTM_LIBTM_H

#include "stm/CommitRing.h"
#include "stm/LockTable.h"
#include "stm/Observer.h"
#include "stm/Tl2.h"
#include "stm/VersionClock.h"
#include "support/Ids.h"
#include "support/MiniVector.h"
#include "support/PtrIndexMap.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>

namespace gstm {

/// Type-erased base of every transactional object: the versioned-lock
/// metadata word (same encoding as the TL2 stripe words) plus the
/// word-granular payload accessors used by the runtime.
class TObjBase {
public:
  explicit TObjBase(size_t PayloadWords) : NumWords(PayloadWords) {}
  TObjBase(const TObjBase &) = delete;
  TObjBase &operator=(const TObjBase &) = delete;
  virtual ~TObjBase() = default;

  // The single-fence commit path publishes the meta word with a relaxed
  // store behind one release fence; see LibTxn::commitOrThrow.
  // stm-order: publish(meta) requires release-fence-before
  std::atomic<uint64_t> &meta() { return Meta; }
  size_t numWords() const { return NumWords; }

  virtual std::atomic<uint64_t> *words() = 0;

private:
  std::atomic<uint64_t> Meta{0};
  size_t NumWords;
};

/// A transactional object holding a trivially copyable \p T. The payload
/// is stored as relaxed atomic words so speculative snapshot copies are
/// well-defined; torn snapshots are rejected by the metadata re-check.
template <typename T> class TObj : public TObjBase {
  static_assert(std::is_trivially_copyable_v<T>,
                "TObj requires a trivially copyable payload");

public:
  static constexpr size_t WordCount = (sizeof(T) + 7) / 8;

  TObj() : TObjBase(WordCount) { storeDirect(T{}); }
  explicit TObj(const T &Value) : TObjBase(WordCount) {
    storeDirect(Value);
  }

  /// Non-transactional accessors; quiescent use only.
  T loadDirect() const {
    uint64_t Raw[WordCount];
    for (size_t I = 0; I < WordCount; ++I)
      Raw[I] = Payload[I].load(std::memory_order_relaxed);
    T Value;
    std::memcpy(&Value, Raw, sizeof(T));
    return Value;
  }
  void storeDirect(const T &Value) {
    uint64_t Raw[WordCount] = {};
    std::memcpy(Raw, &Value, sizeof(T));
    for (size_t I = 0; I < WordCount; ++I)
      Payload[I].store(Raw[I], std::memory_order_relaxed);
  }

  std::atomic<uint64_t> *words() override { return Payload; }

private:
  std::atomic<uint64_t> Payload[WordCount];
};

/// Construction-time configuration of a LibTm runtime.
struct LibTmConfig {
  unsigned CommitRingBits = 13;
  /// Single-fence commit, as in Tl2Config::SingleFenceCommit: validate,
  /// write back, then advance the clock and publish every object's
  /// metadata with relaxed stores behind one release fence. Read-set
  /// validation runs unconditionally in this mode (the `wv == rv+1`
  /// elision is unsound once the clock advances after writeback).
  bool SingleFenceCommit = true;
  BackoffKind Backoff = BackoffKind::Yield;
  /// Scheduler perturbation, as in Tl2Config::PreemptShift: yield with
  /// probability 2^-PreemptShift per object access to restore
  /// multicore-like transaction overlap on undersized hosts. 0 = off.
  unsigned PreemptShift = 0;
  /// Accumulate per-attempt wall-clock latency into the stats shards
  /// (see Tl2Config::TrackAttemptLatency).
  bool TrackAttemptLatency = false;
};

/// One object-based STM runtime instance.
class LibTm {
public:
  explicit LibTm(const LibTmConfig &Config = LibTmConfig())
      : Cfg(Config), Ring(Config.CommitRingBits) {}

  LibTm(const LibTm &) = delete;
  LibTm &operator=(const LibTm &) = delete;

  void setObserver(TxEventObserver *Obs) { Observer = Obs; }
  void setGate(StartGate *G) { Gate = G; }
  /// Installs a contention manager that overrides the config's backoff
  /// policy (nullptr to restore it). Must not be called while
  /// transactions are running. Historically a TL2-only capability; the
  /// shared executor (engine/TxnExecutor.h) made it a family-wide trait.
  void setContentionManager(ContentionManager *M) { Cm = M; }
  /// Installs \p Obs as the per-access observer (nullptr to disable, the
  /// default); same contract as Tl2Stm::setAccessObserver. Accesses are
  /// reported object-granular: Addr = the TObjBase, Value = payload word
  /// 0.
  void setAccessObserver(TxAccessObserver *Obs) { AccessObs = Obs; }

  const LibTmConfig &config() const { return Cfg; }
  VersionClock &clock() { return Clock; }
  CommitRing &commitRing() { return Ring; }
  TxEventObserver *observer() const { return Observer; }
  StartGate *gate() const { return Gate; }
  ContentionManager *contentionManager() const { return Cm; }
  TxAccessObserver *accessObserver() const { return AccessObs; }
  /// Sharded per-thread telemetry (see stm/StatsShard.h).
  Tl2Stats &stats() { return Counters; }
  const Tl2Stats &stats() const { return Counters; }

private:
  LibTmConfig Cfg;
  VersionClock Clock;
  CommitRing Ring;
  TxEventObserver *Observer = nullptr;
  StartGate *Gate = nullptr;
  ContentionManager *Cm = nullptr;
  TxAccessObserver *AccessObs = nullptr;
  Tl2Stats Counters;
};

/// Per-thread transaction descriptor for LibTm. The retry loop (`run`)
/// comes from the shared engine-family executor (engine/TxnExecutor.h),
/// which also gives LibTm contention-manager support for free.
class LibTxn : public TxnExecutor<LibTxn> {
public:
  LibTxn(LibTm &Tm, ThreadId Thread)
      : TxnExecutor<LibTxn>(Thread), S(Tm), Thread(Thread),
        Shard(&Tm.stats().shard(Thread)) {}
  LibTxn(const LibTxn &) = delete;
  LibTxn &operator=(const LibTxn &) = delete;

  /// Transactional snapshot read of an object.
  template <typename T> T read(const TObj<T> &Obj) {
    auto &Mutable = const_cast<TObj<T> &>(Obj);
    uint64_t Raw[TObj<T>::WordCount];
    readWords(Mutable, Raw);
    T Value;
    std::memcpy(&Value, Raw, sizeof(T));
    return Value;
  }

  /// Transactional (buffered) whole-object write. The value type is
  /// non-deduced so braced/convertible values bind to the object's type.
  template <typename T>
  void write(TObj<T> &Obj, const std::type_identity_t<T> &Value) {
    uint64_t Raw[TObj<T>::WordCount] = {};
    std::memcpy(Raw, &Value, sizeof(T));
    writeWords(Obj, Raw);
  }

  [[noreturn]] void retryAbort();

  ThreadId threadId() const { return Thread; }
  uint64_t readVersion() const { return Rv; }
  size_t readSetSize() const { return ReadSet.size(); }
  size_t writeSetSize() const { return WriteObjs.size(); }

private:
  friend class TxnExecutor<LibTxn>;

  /// Executor contract (engine/TxnExecutor.h).
  LibTm &stm() { return S; }
  StatsShard *shard() { return Shard; }
  /// Locations this attempt opened (contention-manager currency): logged
  /// reads plus buffered object writes.
  uint64_t opensCount() const { return ReadSet.size() + WriteObjs.size(); }

  void begin(TxId Tx);
  /// Copies a validated snapshot of \p Obj into \p Out (or the buffered
  /// write if present).
  void readWords(TObjBase &Obj, uint64_t *Out);
  void writeWords(TObjBase &Obj, const uint64_t *In);
  void commitOrThrow(uint32_t PriorAborts);
  /// Commit-time read-set revalidation (branch-free fast pass over the
  /// metadata words, attribution walk only when something is suspicious);
  /// releases the acquired locks and throws on conflict.
  void validateReadSet(TxThreadPair Self);

  [[noreturn]] void abortOnOwner(TxThreadPair Owner, AbortSite Site);
  [[noreturn]] void abortOnVersion(uint64_t Version, AbortSite Site);
  [[noreturn]] void reportAbortAndThrow(const AbortEvent &E);
  void releaseAcquiredLocks();

  LibTm &S;
  ThreadId Thread;
  /// This thread's telemetry shard, resolved once at construction.
  StatsShard *Shard;
  TxId CurrentTx = 0;
  uint64_t Rv = 0;

  /// Per-attempt logs; inline-capacity containers for the same reasons
  /// as Tl2Txn's (no heap traffic for common transaction sizes, O(1)
  /// clear in begin(), grown capacity retained across the retry loop).
  MiniVector<TObjBase *, 64> ReadSet;
  /// Write set: object -> offset into WriteData (object's buffered
  /// payload words).
  MiniVector<TObjBase *, 32> WriteObjs;
  PtrIndexMap<uint32_t, 5> WriteIndex;
  MiniVector<uint64_t, 64> WriteData;
  /// Pre-lock metadata of objects locked so far during commit.
  MiniVector<std::pair<TObjBase *, uint64_t>, 32> Acquired;
};

} // namespace gstm

#endif // GSTM_LIBTM_LIBTM_H
