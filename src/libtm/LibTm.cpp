//===- libtm/LibTm.cpp -----------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "libtm/LibTm.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

using namespace gstm;

void LibTxn::begin(TxId Tx) {
  CurrentTx = Tx;
  Rv = S.clock().sample();
  ReadSet.clear();
  WriteObjs.clear();
  WriteIndex.clear();
  WriteData.clear();
  Acquired.clear();
  if (TxAccessObserver *A = S.accessObserver())
    A->onTxBegin(Thread, Tx, Rv);
}

void LibTxn::readWords(TObjBase &Obj, uint64_t *Out) {
  maybePreempt();
  // Read-after-write: serve the buffered payload.
  if (const uint32_t *Pos = WriteIndex.find(&Obj)) {
    const uint64_t *Buffered = &WriteData[*Pos];
    std::copy(Buffered, Buffered + Obj.numWords(), Out);
    if (TxAccessObserver *A = S.accessObserver())
      A->onTxLoad(Thread, &Obj, Out[0], /*Version=*/0, /*Buffered=*/true);
    return;
  }

  uint64_t Pre = Obj.meta().load(std::memory_order_acquire);
  StripeState PreState = LockTable::decode(Pre);
  if (PreState.Locked)
    abortOnOwner(PreState.Owner, AbortSite::Read);

  std::atomic<uint64_t> *Words = Obj.words();
  for (size_t I = 0, E = Obj.numWords(); I != E; ++I)
    Out[I] = Words[I].load(std::memory_order_acquire);

  uint64_t Post = Obj.meta().load(std::memory_order_acquire);
  if (Post != Pre) {
    StripeState PostState = LockTable::decode(Post);
    if (PostState.Locked)
      abortOnOwner(PostState.Owner, AbortSite::Read);
    abortOnVersion(PostState.Version, AbortSite::Read);
  }
  if (PreState.Version > Rv)
    abortOnVersion(PreState.Version, AbortSite::Read);

  ReadSet.push_back(&Obj);
  if (TxAccessObserver *A = S.accessObserver())
    A->onTxLoad(Thread, &Obj, Out[0], PreState.Version,
                /*Buffered=*/false);
}

void LibTxn::writeWords(TObjBase &Obj, const uint64_t *In) {
  maybePreempt();
  if (TxAccessObserver *A = S.accessObserver())
    A->onTxStore(Thread, &Obj, In[0]);
  if (const uint32_t *Pos = WriteIndex.find(&Obj)) {
    std::copy(In, In + Obj.numWords(), &WriteData[*Pos]);
    return;
  }
  size_t Offset = WriteData.size();
  WriteIndex.insert(&Obj, static_cast<uint32_t>(Offset));
  WriteObjs.push_back(&Obj);
  for (size_t I = 0, E = Obj.numWords(); I != E; ++I)
    WriteData.push_back(In[I]);
}

void LibTxn::commitOrThrow(uint32_t PriorAborts) {
  TxThreadPair Self = packPair(CurrentTx, Thread);

  if (WriteObjs.empty()) {
    Shard->recordCommit(PriorAborts, /*ReadOnly=*/true);
    if (TxEventObserver *Obs = S.observer())
      Obs->onCommit(CommitEvent{Thread, CurrentTx, 0, PriorAborts,
                                /*ReadOnly=*/true});
    return;
  }

  // Lock the written objects in address order (deadlock-free); readers
  // are never blocked — they abort if they validate against us, which is
  // LibTM's abort-readers resolution.
  std::sort(WriteObjs.begin(), WriteObjs.end());
  for (TObjBase *Obj : WriteObjs) {
    uint64_t Old = Obj->meta().load(std::memory_order_relaxed);
    for (;;) {
      StripeState OldState = LockTable::decode(Old);
      if (OldState.Locked) {
        releaseAcquiredLocks();
        abortOnOwner(OldState.Owner, AbortSite::LockAcquire);
      }
      if (Obj->meta().compare_exchange_weak(
              Old, LockTable::encodeLocked(Self),
              std::memory_order_acq_rel, std::memory_order_relaxed))
        break;
    }
    Acquired.push_back({Obj, Old});
    if (TxAccessObserver *A = S.accessObserver())
      A->onLockAcquire(
          Thread, static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Obj)));
  }

  const bool SingleFence = S.config().SingleFenceCommit;

  uint64_t Wv;
  if (SingleFence) {
    // Single-fence commit (see LibTmConfig::SingleFenceCommit): validate
    // unconditionally, write back, then advance the clock and publish
    // all metadata with relaxed stores behind one release fence.
    //
    // The seq_cst fence stands in for the standard path's clock
    // fetch_add between lock acquisition and validation: it globally
    // orders our meta-word lock CAS before any other committer's
    // validation loads. Without it, store-buffering lets two cyclically
    // conflicting writers each miss the other's lock and both commit
    // (see the matching fence in Tl2Txn::commitOrThrow).
    // stm-order: fence(seq_cst) before(validateReadSet) label(LibTxn::commitOrThrow single-fence commit)
    std::atomic_thread_fence(std::memory_order_seq_cst);
    validateReadSet(Self);

    for (size_t W = 0, E = WriteObjs.size(); W != E; ++W) {
      TObjBase *Obj = WriteObjs[W];
      const uint64_t *In = &WriteData[*WriteIndex.find(Obj)];
      std::atomic<uint64_t> *Words = Obj->words();
      for (size_t I = 0, N = Obj->numWords(); I != N; ++I)
        Words[I].store(In[I], std::memory_order_release);
    }
    std::atomic_thread_fence(std::memory_order_release);

    Wv = S.clock().advance();
    S.commitRing().record(Wv, Self);
    for (auto &[Obj, Old] : Acquired) {
      (void)Old;
      Obj->meta().store(LockTable::encodeVersion(Wv),
                        std::memory_order_relaxed);
    }
    Acquired.clear();
  } else {
    Wv = S.clock().advance();
    // TL2 clock elision: nothing committed since rv, reads still valid.
    if (Wv != Rv + 1)
      validateReadSet(Self);

    S.commitRing().record(Wv, Self);

    for (size_t W = 0, E = WriteObjs.size(); W != E; ++W) {
      TObjBase *Obj = WriteObjs[W];
      const uint64_t *In = &WriteData[*WriteIndex.find(Obj)];
      std::atomic<uint64_t> *Words = Obj->words();
      for (size_t I = 0, N = Obj->numWords(); I != N; ++I)
        Words[I].store(In[I], std::memory_order_release);
    }
    for (auto &[Obj, Old] : Acquired) {
      (void)Old;
      Obj->meta().store(LockTable::encodeVersion(Wv),
                        std::memory_order_release);
    }
    Acquired.clear();
  }

  Shard->recordCommit(PriorAborts, /*ReadOnly=*/false);
  if (TxEventObserver *Obs = S.observer())
    Obs->onCommit(CommitEvent{Thread, CurrentTx, Wv, PriorAborts,
                              /*ReadOnly=*/false});
}

void LibTxn::validateReadSet(TxThreadPair Self) {
  // Fast pass: branch-free OR-reduction, as in Tl2Txn::validateReadSet.
  // A metadata word is suspicious iff locked (bit 0) or newer than rv.
  TObjBase *const *Objs = ReadSet.data();
  const size_t N = ReadSet.size();
  const uint64_t Snapshot = Rv;
  uint64_t Suspicious = 0;
  for (size_t I = 0; I < N; ++I) {
    uint64_t W = Objs[I]->meta().load(std::memory_order_acquire);
    Suspicious |= (W & 1) | static_cast<uint64_t>((W >> 1) > Snapshot);
  }
  if (Suspicious == 0)
    return;

  // Slow pass: full attribution. Objects this commit locked itself
  // (read-then-written) always land here and validate against their
  // pre-lock metadata, or a commit that interleaved between our read and
  // our lock would go undetected.
  for (TObjBase *Obj : ReadSet) {
    uint64_t Word = Obj->meta().load(std::memory_order_acquire);
    StripeState State = LockTable::decode(Word);
    if (State.Locked) {
      if (State.Owner != Self) {
        releaseAcquiredLocks();
        abortOnOwner(State.Owner, AbortSite::CommitValidate);
      }
      auto It = std::lower_bound(
          Acquired.begin(), Acquired.end(), Obj,
          [](const std::pair<TObjBase *, uint64_t> &L, TObjBase *Ptr) {
            return L.first < Ptr;
          });
      assert(It != Acquired.end() && It->first == Obj &&
             "self-locked object missing from the acquired list");
      StripeState PreLock = LockTable::decode(It->second);
      if (PreLock.Version > Rv) {
        releaseAcquiredLocks();
        abortOnVersion(PreLock.Version, AbortSite::CommitValidate);
      }
      continue;
    }
    if (State.Version > Rv) {
      releaseAcquiredLocks();
      abortOnVersion(State.Version, AbortSite::CommitValidate);
    }
  }
}

void LibTxn::releaseAcquiredLocks() {
  for (auto It = Acquired.rbegin(); It != Acquired.rend(); ++It)
    It->first->meta().store(It->second, std::memory_order_release);
  Acquired.clear();
}

void LibTxn::abortOnOwner(TxThreadPair Owner, AbortSite Site) {
  reportAbortAndThrow(AbortEvent{Thread, CurrentTx,
                                 AbortCauseKind::KnownCommitter, Owner, 0,
                                 Site});
}

void LibTxn::abortOnVersion(uint64_t Version, AbortSite Site) {
  TxThreadPair Committer;
  bool Hit = S.commitRing().lookup(Version, Committer);
  Shard->recordCommitRingLookup(Hit);
  if (Hit)
    reportAbortAndThrow(AbortEvent{Thread, CurrentTx,
                                   AbortCauseKind::KnownCommitter,
                                   Committer, Version, Site});
  reportAbortAndThrow(AbortEvent{Thread, CurrentTx,
                                 AbortCauseKind::UnknownCommitter, 0,
                                 Version, Site});
}

void LibTxn::retryAbort() {
  reportAbortAndThrow(AbortEvent{Thread, CurrentTx, AbortCauseKind::Explicit,
                                 0, 0, AbortSite::Explicit});
}

void LibTxn::reportAbortAndThrow(const AbortEvent &E) {
  assert(Acquired.empty() && "locks must be released before reporting");
  LastOpens = opensCount();
  LastEnemyKnown = E.Kind == AbortCauseKind::KnownCommitter;
  LastEnemy = LastEnemyKnown ? E.Cause : 0;
  Shard->recordAbort(E.Kind, E.Site);
  if (TxEventObserver *Obs = S.observer())
    Obs->onAbort(E);
  throw TxAbortException{};
}
