//===- support/Timer.h - Monotonic wall-clock timer ----------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin monotonic-clock timer. The paper measures the execution time of
/// each thread function (the quantity whose variance is optimized) and the
/// per-frame processing time in SynQuake; both use this timer.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SUPPORT_TIMER_H
#define GSTM_SUPPORT_TIMER_H

#include <chrono>

namespace gstm {

/// Measures elapsed wall-clock time from construction or last reset().
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed time in seconds since construction / last reset.
  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed time in milliseconds since construction / last reset.
  double elapsedMillis() const { return elapsedSeconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace gstm

#endif // GSTM_SUPPORT_TIMER_H
