//===- support/PtrIndexMap.h - Open-addressed pointer index map ----------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The write-set index of a transaction descriptor: pointer key -> small
/// integer payload (redo-log position). Replaces `std::unordered_map`,
/// which paid a hash + allocation per insert and a full bucket walk on
/// every `clear()` — per-attempt costs on the STM hot path.
///
///  * **Open addressing, linear probing, power-of-two capacity.** One
///    multiplicative hash, then contiguous probes: at the ≤50% load factor
///    maintained here probe chains are short and stay in one or two cache
///    lines.
///  * **Generation-stamped slots, O(1) clear.** A slot is live iff its
///    stamp equals the map's current generation; `clear()` increments the
///    generation and touches no slot memory. On the (rare) u32 generation
///    wrap the table is memset once.
///  * **Inline first table.** The initial 2^InlineBits slots live inside
///    the descriptor; growth (doubling, rehash-all) allocates once and is
///    retained across `clear()`, so retry loops never rehash.
///
/// Not thread-safe: one instance per worker thread, like the logs.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SUPPORT_PTRINDEXMAP_H
#define GSTM_SUPPORT_PTRINDEXMAP_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

namespace gstm {

template <typename V, unsigned InlineBits = 5> class PtrIndexMap {
  static_assert(InlineBits >= 1 && InlineBits <= 16,
                "unreasonable inline table size");
  // clear() memsets the slot array on generation wrap.
  static_assert(std::is_trivially_copyable_v<V>,
                "PtrIndexMap payloads must be trivially copyable");

public:
  PtrIndexMap() { resetTable(InlineSlots, InlineBits); }

  PtrIndexMap(const PtrIndexMap &) = delete;
  PtrIndexMap &operator=(const PtrIndexMap &) = delete;

  ~PtrIndexMap() {
    if (Slots != InlineSlots)
      delete[] Slots;
  }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  size_t capacity() const { return Mask + 1; }

  /// Drops every entry without touching slot memory (generation bump).
  /// Capacity — including a grown heap table — is retained.
  void clear() {
    Count = 0;
    if (++Gen == 0) { // u32 wrap: stamps from the old epoch could alias
      std::memset(static_cast<void *>(Slots), 0,
                  (Mask + 1) * sizeof(Slot));
      Gen = 1;
    }
  }

  /// Returns a pointer to the value stored under \p Key, or nullptr.
  V *find(const void *Key) {
    size_t I = hash(Key) & Mask;
    for (;;) {
      Slot &S = Slots[I];
      if (S.Stamp != Gen || S.Key == nullptr)
        return nullptr;
      if (S.Key == Key)
        return &S.Val;
      I = (I + 1) & Mask;
    }
  }

  /// Inserts (\p Key, \p Val); \p Key must not already be present (the
  /// write paths always `find` first).
  void insert(const void *Key, V Val) {
    assert(Key != nullptr && "null keys are the empty-slot sentinel");
    if ((Count + 1) * 2 > Mask + 1)
      growRehash();
    size_t I = hash(Key) & Mask;
    for (;;) {
      Slot &S = Slots[I];
      if (S.Stamp != Gen || S.Key == nullptr) {
        S.Key = Key;
        S.Val = Val;
        S.Stamp = Gen;
        ++Count;
        return;
      }
      assert(S.Key != Key && "duplicate insert");
      I = (I + 1) & Mask;
    }
  }

private:
  struct Slot {
    const void *Key = nullptr;
    V Val{};
    uint32_t Stamp = 0;
  };

  static size_t hash(const void *Key) {
    // SplitMix64 finalizer over the pointer bits: cheap, and mixes the
    // high bits that allocation patterns leave correlated.
    uint64_t X = reinterpret_cast<uintptr_t>(Key);
    X ^= X >> 30;
    X *= 0xbf58476d1ce4e5b9ULL;
    X ^= X >> 27;
    X *= 0x94d049bb133111ebULL;
    X ^= X >> 31;
    return static_cast<size_t>(X);
  }

  void resetTable(Slot *Table, unsigned Bits) {
    Slots = Table;
    Mask = (size_t{1} << Bits) - 1;
    Count = 0;
    Gen = 1;
    for (size_t I = 0; I <= Mask; ++I)
      Slots[I] = Slot{};
  }

  void growRehash() {
    Slot *Old = Slots;
    size_t OldMask = Mask;
    uint32_t OldGen = Gen;
    size_t NewCap = (Mask + 1) * 2;
    Slot *Table = new Slot[NewCap];
    Slots = Table;
    Mask = NewCap - 1;
    Gen = 1;
    size_t Rehomed = 0;
    for (size_t I = 0; I <= OldMask; ++I) {
      const Slot &S = Old[I];
      if (S.Stamp != OldGen || S.Key == nullptr)
        continue;
      size_t J = hash(S.Key) & Mask;
      while (Slots[J].Key != nullptr)
        J = (J + 1) & Mask;
      Slots[J].Key = S.Key;
      Slots[J].Val = S.Val;
      Slots[J].Stamp = Gen;
      ++Rehomed;
    }
    Count = Rehomed;
    if (Old != InlineSlots)
      delete[] Old;
  }

  Slot *Slots;
  size_t Mask;
  size_t Count = 0;
  uint32_t Gen = 1;
  Slot InlineSlots[size_t{1} << InlineBits];
};

} // namespace gstm

#endif // GSTM_SUPPORT_PTRINDEXMAP_H
