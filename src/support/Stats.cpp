//===- support/Stats.cpp --------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace gstm;

double RunningStat::mean() const {
  if (Samples.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : Samples)
    Sum += X;
  return Sum / static_cast<double>(Samples.size());
}

double RunningStat::stddev() const {
  if (Samples.size() < 2)
    return 0.0;
  double M = mean();
  double SumSq = 0.0;
  for (double X : Samples)
    SumSq += (X - M) * (X - M);
  return std::sqrt(SumSq / static_cast<double>(Samples.size() - 1));
}

double RunningStat::trimmedStddev(double TrimFraction) const {
  size_t N = Samples.size();
  size_t Drop = static_cast<size_t>(static_cast<double>(N) * TrimFraction);
  if (N < 2 * Drop + 2)
    return stddev();
  std::vector<double> Sorted = Samples;
  std::sort(Sorted.begin(), Sorted.end());
  double Sum = 0.0;
  size_t Kept = N - 2 * Drop;
  for (size_t I = Drop; I < N - Drop; ++I)
    Sum += Sorted[I];
  double Mean = Sum / static_cast<double>(Kept);
  double SumSq = 0.0;
  for (size_t I = Drop; I < N - Drop; ++I)
    SumSq += (Sorted[I] - Mean) * (Sorted[I] - Mean);
  return std::sqrt(SumSq / static_cast<double>(Kept - 1));
}

double RunningStat::min() const {
  assert(!Samples.empty() && "min() of empty sample set");
  return *std::min_element(Samples.begin(), Samples.end());
}

double RunningStat::max() const {
  assert(!Samples.empty() && "max() of empty sample set");
  return *std::max_element(Samples.begin(), Samples.end());
}

void AbortHistogram::merge(const AbortHistogram &Other) {
  for (const auto &[Aborts, Count] : Other.Freq)
    Freq[Aborts] += Count;
}

uint64_t AbortHistogram::frequency(uint64_t Aborts) const {
  auto It = Freq.find(Aborts);
  return It == Freq.end() ? 0 : It->second;
}

double AbortHistogram::tailMetric() const {
  // The paper's metric sums the square of each *distinct* abort count seen,
  // so a distribution whose tail reaches j=40 scores 1600 from that bucket
  // alone regardless of its frequency.
  double Sum = 0.0;
  for (const auto &[Aborts, Count] : Freq) {
    (void)Count;
    Sum += static_cast<double>(Aborts) * static_cast<double>(Aborts);
  }
  return Sum;
}

uint64_t AbortHistogram::maxAborts() const {
  if (Freq.empty())
    return 0;
  return Freq.rbegin()->first;
}

uint64_t AbortHistogram::totalCommits() const {
  uint64_t Total = 0;
  for (const auto &[Aborts, Count] : Freq) {
    (void)Aborts;
    Total += Count;
  }
  return Total;
}

uint64_t AbortHistogram::totalAborts() const {
  uint64_t Total = 0;
  for (const auto &[Aborts, Count] : Freq)
    Total += Aborts * Count;
  return Total;
}

double gstm::percentImprovement(double Baseline, double Optimized) {
  if (Baseline == 0.0) {
    // A zero baseline admits no percentage: 0 -> 0 is genuinely "no
    // change", but 0 -> anything positive used to be reported as 0.0 too,
    // silently hiding a regression in the table generators. NaN makes
    // the undefined case explicit; aggregators skip it (see
    // meanTailImprovementPercent).
    if (Optimized == 0.0)
      return 0.0;
    return std::numeric_limits<double>::quiet_NaN();
  }
  return 100.0 * (Baseline - Optimized) / Baseline;
}
