//===- support/Options.h - Minimal CLI option parsing --------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny `--key=value` / `--flag` command-line parser used by every bench
/// harness and example so each binary can scale its run count, thread
/// count, workload size and Tfactor without a heavyweight dependency.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SUPPORT_OPTIONS_H
#define GSTM_SUPPORT_OPTIONS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gstm {

/// Parsed command-line options of the form `--key=value` or bare `--flag`.
class Options {
public:
  /// Parses \p Argv. Positional (non `--`) arguments are collected in
  /// order. A bare `--flag` is stored with the value "1".
  static Options parse(int Argc, const char *const *Argv);

  /// Returns the value of \p Key, or \p Default when absent/unparsable.
  int64_t getInt(const std::string &Key, int64_t Default) const;
  double getDouble(const std::string &Key, double Default) const;
  std::string getString(const std::string &Key,
                        const std::string &Default) const;
  bool getBool(const std::string &Key, bool Default) const;

  bool has(const std::string &Key) const { return Values.count(Key) != 0; }

  /// Non-option arguments, in command-line order.
  const std::vector<std::string> &positionals() const { return Positional; }

  /// Every `--key` that was passed (for spec validation).
  std::vector<std::string> keys() const;

private:
  std::map<std::string, std::string> Values;
  std::vector<std::string> Positional;
};

/// One declared option of a tool's CLI.
struct OptionSpec {
  std::string Key;   ///< name without the leading "--"
  std::string Value; ///< metavariable ("N", "FILE", ...); empty = flag
  std::string Help;  ///< one-line description
};

/// Declarative CLI for a tool: generates `--help` text and rejects
/// unknown options, so every binary shares one argument convention
/// (`--key=value` / `--flag`) instead of hand-rolled variants.
class OptionSet {
public:
  /// \p Positionals names the positional operands in the usage line
  /// (e.g. "[paths...]"); empty when the tool takes none.
  OptionSet(std::string Tool, std::string Banner,
            std::vector<OptionSpec> Specs, std::string Positionals = "");

  /// Usage text: banner, synopsis, and one line per declared option.
  std::string usage() const;

  /// True when every `--key` in \p Opts is declared; otherwise fills
  /// \p Error with the offending key.
  bool validate(const Options &Opts, std::string &Error) const;

  /// parse() + validate(); prints usage and exits 0 on `--help`, prints
  /// the error and usage to stderr and exits 2 on an unknown option.
  Options parseOrExit(int Argc, const char *const *Argv) const;

private:
  std::string Tool;
  std::string Banner;
  std::vector<OptionSpec> Specs;
  std::string Positionals;
};

} // namespace gstm

#endif // GSTM_SUPPORT_OPTIONS_H
