//===- support/Options.h - Minimal CLI option parsing --------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny `--key=value` / `--flag` command-line parser used by every bench
/// harness and example so each binary can scale its run count, thread
/// count, workload size and Tfactor without a heavyweight dependency.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SUPPORT_OPTIONS_H
#define GSTM_SUPPORT_OPTIONS_H

#include <cstdint>
#include <map>
#include <string>

namespace gstm {

/// Parsed command-line options of the form `--key=value` or bare `--flag`.
class Options {
public:
  /// Parses \p Argv. Unrecognized positional arguments are ignored.
  /// A bare `--flag` is stored with the value "1".
  static Options parse(int Argc, const char *const *Argv);

  /// Returns the value of \p Key, or \p Default when absent/unparsable.
  int64_t getInt(const std::string &Key, int64_t Default) const;
  double getDouble(const std::string &Key, double Default) const;
  std::string getString(const std::string &Key,
                        const std::string &Default) const;
  bool getBool(const std::string &Key, bool Default) const;

  bool has(const std::string &Key) const { return Values.count(Key) != 0; }

private:
  std::map<std::string, std::string> Values;
};

} // namespace gstm

#endif // GSTM_SUPPORT_OPTIONS_H
