//===- support/Barrier.h - Reusable thread barrier ------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable counting barrier. STAMP-style workloads synchronize phases
/// (e.g. kmeans rounds) and SynQuake synchronizes frames across server
/// threads with barriers; this wrapper exists so the suite does not depend
/// on the availability of std::barrier in the host toolchain and so that
/// arrive-and-wait can be condition-variable based (we run many more
/// threads than cores, so spinning would invert the scheduling behaviour
/// the experiments rely on).
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SUPPORT_BARRIER_H
#define GSTM_SUPPORT_BARRIER_H

#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace gstm {

/// Reusable barrier for a fixed number of participants.
class Barrier {
public:
  explicit Barrier(size_t NumThreads) : Expected(NumThreads) {
    assert(NumThreads > 0 && "barrier needs at least one participant");
  }

  Barrier(const Barrier &) = delete;
  Barrier &operator=(const Barrier &) = delete;

  /// Blocks until all participants have arrived; then all are released and
  /// the barrier resets for the next phase.
  void arriveAndWait() {
    std::unique_lock<std::mutex> Lock(M);
    size_t Gen = Generation;
    if (++Arrived == Expected) {
      Arrived = 0;
      ++Generation;
      Cv.notify_all();
      return;
    }
    Cv.wait(Lock, [&] { return Generation != Gen; });
  }

private:
  std::mutex M;
  std::condition_variable Cv;
  size_t Expected;
  size_t Arrived = 0;
  size_t Generation = 0;
};

} // namespace gstm

#endif // GSTM_SUPPORT_BARRIER_H
