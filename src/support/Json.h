//===- support/Json.h - Minimal JSON writer and parser -------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free JSON writer plus a small recursive-descent parser,
/// sized for the telemetry export (core/JsonExport.h) and its consumer
/// (`model_inspect --stats`). The writer escapes strings and renders
/// non-finite doubles as null (JSON has no NaN/Inf); the parser accepts
/// strict JSON and stores numbers as double, which is exact for the
/// counter magnitudes the telemetry emits (< 2^53).
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SUPPORT_JSON_H
#define GSTM_SUPPORT_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gstm {

/// Streaming JSON writer. Usage:
/// \code
///   JsonWriter W;
///   W.beginObject().key("commits").value(uint64_t{42}).endObject();
///   std::string S = W.take();
/// \endcode
/// The caller is responsible for well-formed nesting; the writer only
/// tracks where commas are needed.
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();
  JsonWriter &key(std::string_view Name);
  JsonWriter &value(std::string_view S);
  JsonWriter &value(const char *S) { return value(std::string_view(S)); }
  JsonWriter &value(uint64_t V);
  JsonWriter &value(int64_t V);
  JsonWriter &value(unsigned V) { return value(static_cast<uint64_t>(V)); }
  JsonWriter &value(double V);
  JsonWriter &value(bool V);
  JsonWriter &null();

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  void separate();
  std::string Out;
  /// One entry per open container: true once the first element was
  /// emitted (a comma is due before the next one).
  std::vector<bool> NeedComma;
  /// The next emission is an object value following key() — no comma.
  bool PendingValue = false;
};

/// Parsed JSON document node.
struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Items;                          // Array
  std::vector<std::pair<std::string, JsonValue>> Members; // Object

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isNumber() const { return K == Kind::Number; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *find(std::string_view Name) const;

  /// Number coerced to uint64 (0 for non-numbers / negatives).
  uint64_t asU64() const;
  double asDouble() const { return K == Kind::Number ? Num : 0.0; }
};

/// Parses a complete JSON document (trailing whitespace allowed);
/// std::nullopt on any syntax error.
std::optional<JsonValue> parseJson(std::string_view Text);

} // namespace gstm

#endif // GSTM_SUPPORT_JSON_H
