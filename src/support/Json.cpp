//===- support/Json.cpp ----------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace gstm;

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

void JsonWriter::separate() {
  if (PendingValue) {
    PendingValue = false;
    return;
  }
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Out += ',';
    NeedComma.back() = true;
  }
}

JsonWriter &JsonWriter::beginObject() {
  separate();
  Out += '{';
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  Out += '}';
  NeedComma.pop_back();
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  separate();
  Out += '[';
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  Out += ']';
  NeedComma.pop_back();
  return *this;
}

static void appendEscaped(std::string &Out, std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

JsonWriter &JsonWriter::key(std::string_view Name) {
  separate();
  appendEscaped(Out, Name);
  Out += ':';
  PendingValue = true;
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view S) {
  separate();
  appendEscaped(Out, S);
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  separate();
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(int64_t V) {
  separate();
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(double V) {
  separate();
  if (!std::isfinite(V)) {
    Out += "null"; // JSON has no NaN / Inf
    return *this;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  separate();
  Out += V ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::null() {
  separate();
  Out += "null";
  return *this;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::find(std::string_view Name) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Key, Val] : Members)
    if (Key == Name)
      return &Val;
  return nullptr;
}

uint64_t JsonValue::asU64() const {
  if (K != Kind::Number || Num < 0)
    return 0;
  return static_cast<uint64_t>(Num);
}

namespace {

class Parser {
public:
  explicit Parser(std::string_view Text) : S(Text) {}

  bool parse(JsonValue &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool literal(std::string_view Lit) {
    if (S.substr(Pos, Lit.size()) != Lit)
      return false;
    Pos += Lit.size();
    return true;
  }

  bool parseValue(JsonValue &Out) {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{': {
      // Bound recursion: the parser descends once per nesting level, so
      // adversarial inputs like 100k opening brackets would otherwise
      // overflow the stack. Telemetry documents are a handful of levels
      // deep; reject instead of crashing.
      if (Depth >= MaxDepth)
        return false;
      ++Depth;
      bool Ok = parseObject(Out);
      --Depth;
      return Ok;
    }
    case '[': {
      if (Depth >= MaxDepth)
        return false;
      ++Depth;
      bool Ok = parseArray(Out);
      --Depth;
      return Ok;
    }
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    case 't':
      Out.K = JsonValue::Kind::Bool;
      Out.B = true;
      return literal("true");
    case 'f':
      Out.K = JsonValue::Kind::Bool;
      Out.B = false;
      return literal("false");
    case 'n':
      Out.K = JsonValue::Kind::Null;
      return literal("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (Pos >= S.size() || S[Pos] != '"' || !parseString(Key))
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return false;
      ++Pos;
      skipWs();
      JsonValue Val;
      if (!parseValue(Val))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(Val));
      skipWs();
      if (Pos >= S.size())
        return false;
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool parseArray(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      JsonValue Val;
      if (!parseValue(Val))
        return false;
      Out.Items.push_back(std::move(Val));
      skipWs();
      if (Pos >= S.size())
        return false;
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    while (Pos < S.size()) {
      char C = S[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        if (Pos + 1 >= S.size())
          return false;
        char E = S[Pos + 1];
        Pos += 2;
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          if (Pos + 4 > S.size())
            return false;
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = S[Pos + I];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= static_cast<unsigned>(H - 'A' + 10);
            else
              return false;
          }
          Pos += 4;
          // Telemetry strings are ASCII; encode BMP code points as UTF-8
          // without surrogate-pair handling.
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          return false;
        }
        continue;
      }
      Out += C;
      ++Pos;
    }
    return false; // unterminated
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() &&
           ((S[Pos] >= '0' && S[Pos] <= '9') || S[Pos] == '.' ||
            S[Pos] == 'e' || S[Pos] == 'E' || S[Pos] == '+' ||
            S[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return false;
    std::string Tok(S.substr(Start, Pos - Start));
    char *End = nullptr;
    double V = std::strtod(Tok.c_str(), &End);
    if (End != Tok.c_str() + Tok.size())
      return false;
    Out.K = JsonValue::Kind::Number;
    Out.Num = V;
    return true;
  }

  static constexpr unsigned MaxDepth = 128;

  std::string_view S;
  size_t Pos = 0;
  unsigned Depth = 0;
};

} // namespace

std::optional<JsonValue> gstm::parseJson(std::string_view Text) {
  JsonValue Root;
  Parser P(Text);
  if (!P.parse(Root))
    return std::nullopt;
  return Root;
}
