//===- support/MiniVector.h - Inline-capacity log vector -----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector with inline storage for the first \p InlineN elements, built
/// for the per-transaction logs on the STM hot path (read set, redo/undo
/// log, acquired-lock list). Design goals, in order:
///
///  * **No heap traffic after warmup.** Short transactions (the common
///    case) never allocate: the log lives inside the descriptor. Long
///    transactions allocate once, and `clear()` keeps the heap block, so
///    a retry loop re-runs entirely allocation-free.
///  * **O(1) clear.** For trivially destructible T, `clear()` is a single
///    store of the count — no per-element work, no bucket walking (the
///    `unordered_map::clear()` cost this type exists to remove).
///  * **POD-aware growth.** Trivially copyable payloads relocate with one
///    `memcpy`; everything else is move-constructed element-wise.
///
/// Semantics match std::vector where implemented, with two deliberate
/// differences: capacity never shrinks, and growth invalidates pointers
/// into the old buffer (as vector) — but `reserve()`d capacity guarantees
/// pointer stability until exceeded, which tests pin down.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SUPPORT_MINIVECTOR_H
#define GSTM_SUPPORT_MINIVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstring>
#include <iterator>
#include <new>
#include <type_traits>
#include <utility>

namespace gstm {

template <typename T, size_t InlineN> class MiniVector {
  static_assert(InlineN > 0, "inline capacity must be non-zero");

public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  MiniVector() : Data(inlineBuf()), Count(0), Cap(InlineN) {}

  MiniVector(const MiniVector &Other) : MiniVector() { appendAll(Other); }

  MiniVector(MiniVector &&Other) noexcept(
      std::is_nothrow_move_constructible_v<T>)
      : MiniVector() {
    stealOrMove(std::move(Other));
  }

  MiniVector &operator=(const MiniVector &Other) {
    if (this == &Other)
      return *this;
    clear();
    appendAll(Other);
    return *this;
  }

  MiniVector &operator=(MiniVector &&Other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this == &Other)
      return *this;
    clear();
    if (!onHeap()) {
      stealOrMove(std::move(Other));
      return *this;
    }
    // We already own a heap block; keep the larger of the two buffers so
    // capacity never regresses across assignment.
    if (Other.onHeap() && Other.Cap > Cap) {
      freeBuffer(Data);
      Data = Other.Data;
      Cap = Other.Cap;
      Count = Other.Count;
      Other.resetToInline();
      return *this;
    }
    for (size_t I = 0; I < Other.Count; ++I)
      push_back(std::move(Other.Data[I]));
    Other.clear();
    return *this;
  }

  ~MiniVector() {
    clear();
    if (onHeap())
      freeBuffer(Data);
  }

  size_t size() const { return Count; }
  size_t capacity() const { return Cap; }
  bool empty() const { return Count == 0; }
  /// True once the log spilled out of the descriptor-inline buffer.
  bool onHeap() const { return Data != inlineBuf(); }

  T *data() { return Data; }
  const T *data() const { return Data; }
  iterator begin() { return Data; }
  iterator end() { return Data + Count; }
  const_iterator begin() const { return Data; }
  const_iterator end() const { return Data + Count; }
  reverse_iterator rbegin() { return reverse_iterator(end()); }
  reverse_iterator rend() { return reverse_iterator(begin()); }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  T &operator[](size_t I) {
    assert(I < Count && "index out of range");
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Count && "index out of range");
    return Data[I];
  }
  T &front() { return (*this)[0]; }
  T &back() { return (*this)[Count - 1]; }

  /// Drops all elements, retaining whatever capacity has been grown: the
  /// next attempt of a retry loop appends into already-owned storage.
  void clear() {
    if constexpr (!std::is_trivially_destructible_v<T>)
      for (size_t I = 0; I < Count; ++I)
        Data[I].~T();
    Count = 0;
  }

  void reserve(size_t NewCap) {
    if (NewCap > Cap)
      grow(NewCap);
  }

  void push_back(const T &V) {
    if (Count == Cap) {
      appendSlow(V);
      return;
    }
    new (Data + Count) T(V);
    ++Count;
  }

  void push_back(T &&V) {
    if (Count == Cap) {
      appendSlow(std::move(V));
      return;
    }
    new (Data + Count) T(std::move(V));
    ++Count;
  }

  template <typename... Args> T &emplace_back(Args &&...A) {
    if (Count == Cap)
      return appendSlow(T(std::forward<Args>(A)...));
    T *Slot = new (Data + Count) T(std::forward<Args>(A)...);
    ++Count;
    return *Slot;
  }

  void pop_back() {
    assert(Count > 0 && "pop_back on empty MiniVector");
    --Count;
    if constexpr (!std::is_trivially_destructible_v<T>)
      Data[Count].~T();
  }

  /// Shrinks to the first \p N elements (capacity untouched). Replaces
  /// the `erase(unique(..), end())` idiom:
  /// `v.truncate(std::unique(v.begin(), v.end()) - v.begin())`.
  void truncate(size_t N) {
    assert(N <= Count && "truncate cannot grow");
    if constexpr (!std::is_trivially_destructible_v<T>)
      for (size_t I = N; I < Count; ++I)
        Data[I].~T();
    Count = N;
  }

private:
  T *inlineBuf() { return reinterpret_cast<T *>(InlineStorage); }
  const T *inlineBuf() const {
    return reinterpret_cast<const T *>(InlineStorage);
  }

  static T *allocBuffer(size_t N) {
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__)
      return static_cast<T *>(
          ::operator new(N * sizeof(T), std::align_val_t(alignof(T))));
    else
      return static_cast<T *>(::operator new(N * sizeof(T)));
  }

  static void freeBuffer(T *P) {
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__)
      ::operator delete(static_cast<void *>(P),
                        std::align_val_t(alignof(T)));
    else
      ::operator delete(static_cast<void *>(P));
  }

  void resetToInline() {
    Data = inlineBuf();
    Count = 0;
    Cap = InlineN;
  }

  /// Relocates into a fresh buffer of \p NewCap (which must exceed Cap).
  void grow(size_t NewCap) {
    T *NewData = allocBuffer(NewCap);
    relocateInto(NewData);
    if (onHeap())
      freeBuffer(Data);
    Data = NewData;
    Cap = NewCap;
  }

  void relocateInto(T *Dest) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (Count > 0)
        std::memcpy(static_cast<void *>(Dest),
                    static_cast<const void *>(Data), Count * sizeof(T));
    } else {
      for (size_t I = 0; I < Count; ++I) {
        new (Dest + I) T(std::move(Data[I]));
        Data[I].~T();
      }
    }
  }

  /// Full-buffer append. Constructs the new element into the new buffer
  /// *before* the old one is released, so `v.push_back(v[0])`-style
  /// aliasing across the grow boundary reads a still-live source.
  template <typename U> T &appendSlow(U &&V) {
    size_t NewCap = Cap * 2;
    T *NewData = allocBuffer(NewCap);
    T *Slot = new (NewData + Count) T(std::forward<U>(V));
    relocateInto(NewData);
    if (onHeap())
      freeBuffer(Data);
    Data = NewData;
    Cap = NewCap;
    ++Count;
    return *Slot;
  }

  void appendAll(const MiniVector &Other) {
    reserve(Other.Count);
    for (size_t I = 0; I < Other.Count; ++I)
      push_back(Other.Data[I]);
  }

  void stealOrMove(MiniVector &&Other) {
    assert(Count == 0 && !onHeap() && "stealOrMove needs a fresh target");
    if (Other.onHeap()) {
      Data = Other.Data;
      Cap = Other.Cap;
      Count = Other.Count;
      Other.resetToInline();
      return;
    }
    for (size_t I = 0; I < Other.Count; ++I)
      push_back(std::move(Other.Data[I]));
    Other.clear();
  }

  T *Data;
  size_t Count;
  size_t Cap;
  alignas(alignof(T)) unsigned char InlineStorage[InlineN * sizeof(T)];
};

} // namespace gstm

#endif // GSTM_SUPPORT_MINIVECTOR_H
