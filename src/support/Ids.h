//===- support/Ids.h - Thread / transaction identifiers ------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread and transaction identifiers shared by the STM runtimes and the
/// model layer. The paper's thread transactional state (TTS) is built from
/// (transaction id, thread id) pairs — e.g. `<a6>` is transaction `a`
/// executed by thread 6 — so the pair is packed into one 32-bit word that
/// the model can hash and compare cheaply ("efficient bitwise structure",
/// paper Sec. VI).
///
/// Transaction ids are static per-site identifiers: each TM_BEGIN site in a
/// workload is numbered at construction time, mirroring the paper's
/// source-level numbering of TM_BEGIN(ID).
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SUPPORT_IDS_H
#define GSTM_SUPPORT_IDS_H

#include <cstdint>

namespace gstm {

/// Worker-thread index, 0-based and dense within a run.
using ThreadId = uint16_t;

/// Static transaction-site identifier, 0-based and dense per workload.
using TxId = uint16_t;

/// A (transaction, thread) pair packed into 32 bits: txid in the high half,
/// thread id in the low half.
using TxThreadPair = uint32_t;

inline TxThreadPair packPair(TxId Tx, ThreadId Thread) {
  return (static_cast<uint32_t>(Tx) << 16) | static_cast<uint32_t>(Thread);
}

inline TxId pairTx(TxThreadPair P) { return static_cast<TxId>(P >> 16); }

inline ThreadId pairThread(TxThreadPair P) {
  return static_cast<ThreadId>(P & 0xffffu);
}

} // namespace gstm

#endif // GSTM_SUPPORT_IDS_H
