//===- support/LatencyHistogram.h - Log-bucketed latency histogram -------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A log-linear (HdrHistogram-style) latency histogram for per-operation
/// commit latency, sized for the OLTP benchmark tier: each worker thread
/// records into its own instance on the hot path (one bit-scan plus one
/// array increment, no allocation, no atomics), and the harness merges the
/// per-thread instances after the run to extract p50/p99/p999.
///
/// Bucketing: values below 2^SubBucketBits land in exact unit buckets;
/// above that, each power-of-two range is split into 2^SubBucketBits
/// linear sub-buckets, so any reported quantile is exact within a relative
/// bucket width of 2^-SubBucketBits (3.125% at the default 5 bits). Values
/// at or above 2^MaxValueBits collapse into one overflow bucket whose
/// reported value saturates at the recorded maximum. Exact min and max are
/// tracked separately, and quantile() clamps into [min, max], so the
/// degenerate ends (p0, p100, single-sample histograms) are exact.
///
/// Unlike the nearest-rank-over-repeats aggregation bench_runner applies
/// to low-sample suites, a histogram over per-operation samples gives a
/// p99 that is a real tail estimate rather than the max: with N samples,
/// rank ceil(0.99*N) sits strictly inside the distribution once N > 100.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SUPPORT_LATENCYHISTOGRAM_H
#define GSTM_SUPPORT_LATENCYHISTOGRAM_H

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace gstm {

/// Single-writer log-linear histogram of non-negative 64-bit samples
/// (nanoseconds by convention). Copyable; merge() folds another instance
/// in, so per-thread instances aggregate without synchronization.
class LatencyHistogram {
public:
  /// Linear sub-buckets per power-of-two range (as a shift). 5 bits = 32
  /// sub-buckets = 3.125% worst-case relative bucket width.
  static constexpr unsigned SubBucketBits = 5;
  /// Samples at or above 2^MaxValueBits (~18 minutes in ns) go to the
  /// overflow bucket.
  static constexpr unsigned MaxValueBits = 40;
  static constexpr size_t SubBucketCount = size_t{1} << SubBucketBits;
  /// One exact linear region + one 2^SubBucketBits-wide region per
  /// exponent above it + the overflow bucket.
  static constexpr size_t NumBuckets =
      (MaxValueBits - SubBucketBits + 1) * SubBucketCount + 1;

  /// Index of the bucket containing \p Value.
  static size_t bucketIndex(uint64_t Value) {
    if (Value < SubBucketCount)
      return static_cast<size_t>(Value); // exact unit buckets
    if (Value >= (uint64_t{1} << MaxValueBits))
      return NumBuckets - 1; // overflow
    // Exponent of the highest set bit; the SubBucketBits bits below it
    // select the linear sub-bucket within the 2^Exp range.
    unsigned Exp = 63u - static_cast<unsigned>(__builtin_clzll(Value));
    uint64_t Sub = (Value >> (Exp - SubBucketBits)) & (SubBucketCount - 1);
    return (static_cast<size_t>(Exp - SubBucketBits) + 1) * SubBucketCount +
           static_cast<size_t>(Sub);
  }

  /// Largest value mapping to bucket \p Index (inclusive upper bound):
  /// the value quantile() reports for ranks landing in the bucket, so a
  /// reported quantile never understates the sample it stands for.
  static uint64_t bucketUpperBound(size_t Index) {
    if (Index < SubBucketCount)
      return static_cast<uint64_t>(Index);
    if (Index >= NumBuckets - 1)
      return ~uint64_t{0}; // overflow: caller clamps to the recorded max
    size_t Range = Index / SubBucketCount; // >= 1
    size_t Sub = Index % SubBucketCount;
    unsigned Exp = SubBucketBits + static_cast<unsigned>(Range) - 1;
    uint64_t Base = uint64_t{1} << Exp;
    uint64_t Width = Base >> SubBucketBits;
    return Base + (static_cast<uint64_t>(Sub) + 1) * Width - 1;
  }

  void record(uint64_t Value) {
    ++Counts[bucketIndex(Value)];
    ++Total;
    Min = std::min(Min, Value);
    Max = std::max(Max, Value);
  }

  /// Folds \p Other into this histogram (cross-thread aggregation; both
  /// histograms must be quiescent).
  void merge(const LatencyHistogram &Other) {
    for (size_t I = 0; I < NumBuckets; ++I)
      Counts[I] += Other.Counts[I];
    Total += Other.Total;
    Min = std::min(Min, Other.Min);
    Max = std::max(Max, Other.Max);
  }

  uint64_t count() const { return Total; }
  /// Exact extremes (0 / 0 when empty).
  uint64_t min() const { return Total ? Min : 0; }
  uint64_t max() const { return Total ? Max : 0; }

  /// Nearest-rank quantile \p Q in [0, 1]: the upper bound of the bucket
  /// holding the ceil(Q*N)-th smallest sample, clamped into [min, max].
  /// 0 when the histogram is empty.
  uint64_t quantile(double Q) const {
    if (Total == 0)
      return 0;
    Q = std::min(1.0, std::max(0.0, Q));
    uint64_t Rank = static_cast<uint64_t>(
        std::ceil(Q * static_cast<double>(Total)));
    Rank = std::max<uint64_t>(Rank, 1);
    uint64_t Seen = 0;
    for (size_t I = 0; I < NumBuckets; ++I) {
      Seen += Counts[I];
      if (Seen >= Rank)
        return std::min(std::max(bucketUpperBound(I), Min), Max);
    }
    return Max; // unreachable while Total == sum(Counts)
  }

  uint64_t p50() const { return quantile(0.50); }
  uint64_t p99() const { return quantile(0.99); }
  uint64_t p999() const { return quantile(0.999); }

  /// Samples in the overflow bucket (values >= 2^MaxValueBits).
  uint64_t overflowCount() const { return Counts[NumBuckets - 1]; }

  void reset() { *this = LatencyHistogram(); }

private:
  uint64_t Counts[NumBuckets] = {};
  uint64_t Total = 0;
  uint64_t Min = ~uint64_t{0};
  uint64_t Max = 0;
};

} // namespace gstm

#endif // GSTM_SUPPORT_LATENCYHISTOGRAM_H
