//===- support/Options.cpp ------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "support/Options.h"

#include <cstdlib>

using namespace gstm;

Options Options::parse(int Argc, const char *const *Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0)
      continue;
    Arg = Arg.substr(2);
    auto Eq = Arg.find('=');
    if (Eq == std::string::npos)
      Opts.Values[Arg] = "1";
    else
      Opts.Values[Arg.substr(0, Eq)] = Arg.substr(Eq + 1);
  }
  return Opts;
}

int64_t Options::getInt(const std::string &Key, int64_t Default) const {
  auto It = Values.find(Key);
  if (It == Values.end())
    return Default;
  char *End = nullptr;
  int64_t V = std::strtoll(It->second.c_str(), &End, 10);
  return (End && *End == '\0') ? V : Default;
}

double Options::getDouble(const std::string &Key, double Default) const {
  auto It = Values.find(Key);
  if (It == Values.end())
    return Default;
  char *End = nullptr;
  double V = std::strtod(It->second.c_str(), &End);
  return (End && *End == '\0') ? V : Default;
}

std::string Options::getString(const std::string &Key,
                               const std::string &Default) const {
  auto It = Values.find(Key);
  return It == Values.end() ? Default : It->second;
}

bool Options::getBool(const std::string &Key, bool Default) const {
  auto It = Values.find(Key);
  if (It == Values.end())
    return Default;
  return It->second != "0" && It->second != "false";
}
