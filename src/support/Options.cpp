//===- support/Options.cpp ------------------------------------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "support/Options.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace gstm;

Options Options::parse(int Argc, const char *const *Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      Opts.Positional.push_back(Arg);
      continue;
    }
    Arg = Arg.substr(2);
    auto Eq = Arg.find('=');
    if (Eq == std::string::npos)
      Opts.Values[Arg] = "1";
    else
      Opts.Values[Arg.substr(0, Eq)] = Arg.substr(Eq + 1);
  }
  return Opts;
}

std::vector<std::string> Options::keys() const {
  std::vector<std::string> Out;
  Out.reserve(Values.size());
  for (const auto &[K, V] : Values)
    Out.push_back(K);
  return Out;
}

int64_t Options::getInt(const std::string &Key, int64_t Default) const {
  auto It = Values.find(Key);
  if (It == Values.end())
    return Default;
  char *End = nullptr;
  int64_t V = std::strtoll(It->second.c_str(), &End, 10);
  return (End && *End == '\0') ? V : Default;
}

double Options::getDouble(const std::string &Key, double Default) const {
  auto It = Values.find(Key);
  if (It == Values.end())
    return Default;
  char *End = nullptr;
  double V = std::strtod(It->second.c_str(), &End);
  return (End && *End == '\0') ? V : Default;
}

std::string Options::getString(const std::string &Key,
                               const std::string &Default) const {
  auto It = Values.find(Key);
  return It == Values.end() ? Default : It->second;
}

bool Options::getBool(const std::string &Key, bool Default) const {
  auto It = Values.find(Key);
  if (It == Values.end())
    return Default;
  return It->second != "0" && It->second != "false";
}

OptionSet::OptionSet(std::string Tool, std::string Banner,
                     std::vector<OptionSpec> Specs, std::string Positionals)
    : Tool(std::move(Tool)), Banner(std::move(Banner)),
      Specs(std::move(Specs)), Positionals(std::move(Positionals)) {}

std::string OptionSet::usage() const {
  std::ostringstream Out;
  Out << Tool << " - " << Banner << "\n\nusage: " << Tool << " [options]";
  if (!Positionals.empty())
    Out << " " << Positionals;
  Out << "\n\noptions:\n";
  size_t Width = 0;
  auto Render = [](const OptionSpec &S) {
    std::string Left = "--" + S.Key;
    if (!S.Value.empty())
      Left += "=" + S.Value;
    return Left;
  };
  for (const OptionSpec &S : Specs)
    Width = std::max(Width, Render(S).size());
  for (const OptionSpec &S : Specs) {
    std::string Left = Render(S);
    Out << "  " << Left << std::string(Width - Left.size() + 2, ' ')
        << S.Help << "\n";
  }
  Out << "  --help" << std::string(Width > 6 ? Width - 6 + 2 : 2, ' ')
      << "show this help\n";
  return Out.str();
}

bool OptionSet::validate(const Options &Opts, std::string &Error) const {
  for (const std::string &K : Opts.keys()) {
    bool Known = K == "help";
    for (const OptionSpec &S : Specs)
      Known = Known || S.Key == K;
    if (!Known) {
      Error = "unknown option '--" + K + "'";
      return false;
    }
  }
  return true;
}

Options OptionSet::parseOrExit(int Argc, const char *const *Argv) const {
  Options Opts = Options::parse(Argc, Argv);
  if (Opts.has("help")) {
    std::fputs(usage().c_str(), stdout);
    std::exit(0);
  }
  std::string Error;
  if (!validate(Opts, Error)) {
    std::fprintf(stderr, "%s: %s\n\n%s", Tool.c_str(), Error.c_str(),
                 usage().c_str());
    std::exit(2);
  }
  return Opts;
}
