//===- support/SplitMix64.h - Deterministic 64-bit PRNG ------------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (Steele et al.'s SplitMix64) used by
/// every workload generator in the suite. Workloads must be reproducible
/// from a seed so that guided and default executions see identical inputs;
/// std::mt19937_64 would also work but SplitMix64 is cheaper and its state
/// is a single word, which keeps per-thread generators copyable.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SUPPORT_SPLITMIX64_H
#define GSTM_SUPPORT_SPLITMIX64_H

#include <cassert>
#include <cstdint>

namespace gstm {

/// Deterministic 64-bit pseudo-random number generator.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Returns the next 64-bit pseudo-random value.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniformly distributed in [0, Bound).
  uint64_t nextBounded(uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    // Multiply-shift reduction (Lemire); bias is negligible for our use.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns an independent generator derived from this one's stream.
  /// Used to hand each worker thread its own deterministic stream.
  SplitMix64 split() { return SplitMix64(next() ^ 0xd1b54a32d192ed03ULL); }

private:
  uint64_t State;
};

} // namespace gstm

#endif // GSTM_SUPPORT_SPLITMIX64_H
