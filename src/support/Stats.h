//===- support/Stats.h - Variance / histogram statistics -----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statistics used throughout the evaluation: sample standard deviation of
/// execution-time readings (paper Sec. II-B), abort-count histograms, and
/// the abort-tail metric `tail_i = sum over distinct abort counts j of j^2`
/// (paper Sec. VII) that weights the tail of the abort distribution.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SUPPORT_STATS_H
#define GSTM_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace gstm {

/// Accumulates scalar samples and reports mean / sample standard deviation.
///
/// The paper quantifies execution-time variance as the sample standard
/// deviation s = sqrt(1/(N-1) * sum (x_i - mean)^2) over repeated runs.
class RunningStat {
public:
  void add(double X) { Samples.push_back(X); }

  size_t count() const { return Samples.size(); }
  double mean() const;

  /// Sample standard deviation; 0 when fewer than two samples exist.
  double stddev() const;

  /// Sample standard deviation after discarding the top and bottom
  /// \p TrimFraction of the sorted samples. Used where a shared host
  /// injects rare latency spikes unrelated to the system under test; 0.05
  /// drops the extreme 5% on each side.
  double trimmedStddev(double TrimFraction) const;

  double min() const;
  double max() const;
  const std::vector<double> &samples() const { return Samples; }

private:
  std::vector<double> Samples;
};

/// Histogram over small non-negative integer observations, used for the
/// per-thread "number of aborts seen before commit" distributions that the
/// paper plots in Figures 5, 7 and 8.
class AbortHistogram {
public:
  /// Records that a transaction committed after \p Aborts aborts.
  void add(uint64_t Aborts) { ++Freq[Aborts]; }

  /// Merges another histogram into this one.
  void merge(const AbortHistogram &Other);

  /// Returns the frequency of exactly \p Aborts aborts (0 if never seen).
  uint64_t frequency(uint64_t Aborts) const;

  /// Paper tail metric: sum of j^2 over every *distinct* abort count j with
  /// non-zero frequency. Squaring emphasizes the tail; a longer tail of
  /// high abort counts yields a larger metric.
  double tailMetric() const;

  /// Largest abort count observed (0 for an empty histogram).
  uint64_t maxAborts() const;

  /// Total number of recorded commits.
  uint64_t totalCommits() const;

  /// Total number of aborts across all recorded commits.
  uint64_t totalAborts() const;

  const std::map<uint64_t, uint64_t> &buckets() const { return Freq; }

private:
  std::map<uint64_t, uint64_t> Freq;
};

/// Percentage improvement of \p Optimized relative to \p Baseline
/// (positive = improvement). Convention for a zero baseline: returns 0
/// when Optimized is also 0 (no change) and quiet NaN otherwise — the
/// improvement is undefined, and the old 0.0 return silently disguised a
/// regression as "no change". Callers that aggregate must skip NaNs.
double percentImprovement(double Baseline, double Optimized);

} // namespace gstm

#endif // GSTM_SUPPORT_STATS_H
