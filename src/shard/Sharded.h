//===- shard/Sharded.h - Sharded TL2 tier (partitioned orec space) -------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded STM tier (ROADMAP item 4): the shared-memory analogue of
/// ClusterSTM's address-distributed orec space. The transactional
/// metadata of a ShardedStm is partitioned into N shard contexts, each
/// with its own LockTable (orec partition), CommitRing (per-shard commit
/// queue for abort attribution), applied version clock, and StatsShard
/// group. Data words hash to a home shard (or are placed explicitly by
/// the steering pass, shard/Steering.h); a transaction whose write set
/// stays within one shard commits through the unchanged TL2 single-fence
/// path against that shard's structures, while a cross-shard writer runs
/// a two-phase protocol: per-shard prepare (stripe acquisition +
/// validation) in globally ordered (shard id, stripe index) order — which
/// precludes deadlock even though cross-shard prepare *waits* briefly on
/// locked stripes instead of aborting — then one coordinated publish that
/// stamps every participating shard at the same write version behind a
/// single release fence (DESIGN.md §4j).
///
/// Versioning: one global VersionClock issues every write version, so
/// commit versions stay globally unique and per-thread monotonic (the
/// checker invariants of src/check). Each shard additionally maintains an
/// *applied* clock, raised to wv strictly after that shard's stripe
/// publishes. A transaction homed on shard H may sample its read version
/// from H's applied clock instead of the global clock: the raiser's
/// global-clock RMW chains every earlier committer's lock acquisition
/// happens-before the sample, so the lagging rv is safe (reads of
/// fresher shards abort on version and the descriptor escalates to the
/// global clock — see UseGlobalRv). Shard-partitioned workloads thus
/// avoid sampling the globally contended clock line on their fast path.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SHARD_SHARDED_H
#define GSTM_SHARD_SHARDED_H

#include "engine/TxnExecutor.h"
#include "shard/ShardConfig.h"
#include "stm/CommitRing.h"
#include "stm/Contention.h"
#include "stm/LockTable.h"
#include "stm/Observer.h"
#include "stm/StatsShard.h"
#include "stm/VersionClock.h"
#include "support/Ids.h"
#include "support/MiniVector.h"
#include "support/PtrIndexMap.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace gstm {

template <typename T> class TVar;
class ShardedStm;

/// Explicit address-range -> home-shard map, the output of the steering
/// pass (shard/Steering.h). Ranges are half-open [Begin, End) over raw
/// word addresses; addresses outside every range fall back to the
/// configured hash. Install via ShardedStm::setPlacement at a quiescent
/// point only: a word's stripe state lives in its home shard's lock
/// table, so remapping an address mid-run would silently split one
/// location's version history across two orec partitions.
class ShardPlacement {
public:
  /// Maps [Begin, End) to \p Shard. Ranges must not overlap.
  void addRange(const void *Begin, const void *End, unsigned Shard);

  /// Sorts the ranges; must be called before the map is installed.
  void finalize();

  /// Home shard of \p Addr, or -1 when no range covers it.
  int lookup(const void *Addr) const;

  size_t size() const { return Ranges.size(); }

private:
  struct Range {
    uintptr_t Begin;
    uintptr_t End;
    unsigned Shard;
  };
  std::vector<Range> Ranges;
  bool Finalized = false;
};

/// Read-side facade over the per-shard StatsShard groups, shaped like
/// the Tl2Stats surface harness code expects (`Stm.stats().aggregate()`).
class ShardedStatsView {
public:
  explicit ShardedStatsView(ShardedStm &Stm) : S(&Stm) {}

  /// Sum over every shard context's stats group.
  StatsSnapshot aggregate() const;
  uint64_t commits() const;
  uint64_t aborts() const;

  /// Zeroes every group. Only call while no transactions are running.
  void reset();

private:
  ShardedStm *S;
};

/// One sharded STM runtime instance: N shard contexts plus the global
/// commit sequencer and the instrumentation hooks (the same observer /
/// gate / contention-manager surface as Tl2Stm). Workloads create one per
/// run.
class ShardedStm {
public:
  /// Shard index width inside combined (shard, stripe) lock keys; the
  /// stripe index occupies the low bits. Combined keys sort by shard
  /// first, which is what gives prepare its deadlock-free total order,
  /// and are what onLockAcquire reports (globally unique across shards).
  static constexpr unsigned ShardKeyShift = 32;

  explicit ShardedStm(const ShardConfig &Config = ShardConfig());

  ShardedStm(const ShardedStm &) = delete;
  ShardedStm &operator=(const ShardedStm &) = delete;

  /// Installs \p Obs as the event observer (nullptr to disable). Must not
  /// be called while transactions are running.
  void setObserver(TxEventObserver *Obs) { Observer = Obs; }

  /// Installs \p G as the start gate (nullptr to disable). Must not be
  /// called while transactions are running.
  void setGate(StartGate *G) { Gate = G; }

  /// Installs a contention manager overriding the config's backoff
  /// policy (nullptr to restore it). Must not be called while
  /// transactions are running.
  void setContentionManager(ContentionManager *M) { Cm = M; }

  /// Installs \p Obs as the per-access observer (nullptr to disable, the
  /// default). Must not be called while transactions are running.
  void setAccessObserver(TxAccessObserver *Obs) { AccessObs = Obs; }

  /// Installs an explicit placement map (nullptr to restore pure
  /// hashing). Must only be called at a quiescent point — no running
  /// transactions, all prior commits drained — because it changes which
  /// orec partition owns an address (see ShardPlacement).
  void setPlacement(const ShardPlacement *P) {
    Placement.store(P, std::memory_order_release);
  }
  const ShardPlacement *placement() const {
    return Placement.load(std::memory_order_acquire);
  }

  const ShardConfig &config() const { return Cfg; }
  unsigned shardCount() const { return Cfg.ShardCount; }

  /// Global commit sequencer: the sole source of write versions.
  VersionClock &clock() { return Clock; }

  /// Home shard of \p Addr under the active placement + hash.
  size_t shardFor(const void *Addr) const;

  LockTable &lockTableOf(size_t Shard) { return Shards[Shard]->Locks; }
  CommitRing &commitRingOf(size_t Shard) { return Shards[Shard]->Ring; }
  /// Shard-local applied clock: raised to wv strictly after the shard's
  /// stripe publishes, so a sample v proves every commit with wv <= v
  /// has its locks visible (see file comment).
  VersionClock &appliedClockOf(size_t Shard) { return Shards[Shard]->Applied; }
  /// Per-shard-context telemetry group: commits/aborts homed at \p Shard.
  Tl2Stats &shardStats(size_t Shard) { return Shards[Shard]->Stats; }

  TxEventObserver *observer() const { return Observer; }
  StartGate *gate() const { return Gate; }
  ContentionManager *contentionManager() const { return Cm; }
  TxAccessObserver *accessObserver() const { return AccessObs; }

  /// Aggregated telemetry over all shard contexts, Tl2Stats-shaped.
  ShardedStatsView stats() { return ShardedStatsView(*this); }

private:
  /// One shard context: an orec partition with its own commit queue,
  /// applied clock, and stats group.
  struct ShardContext {
    ShardContext(const ShardConfig &Cfg)
        : Locks(Cfg.LockTableBits, Cfg.StripeHash), Ring(Cfg.CommitRingBits) {
    }
    LockTable Locks;
    CommitRing Ring;
    VersionClock Applied;
    Tl2Stats Stats;
  };

  ShardConfig Cfg;
  VersionClock Clock;
  std::vector<std::unique_ptr<ShardContext>> Shards;
  std::atomic<const ShardPlacement *> Placement{nullptr};
  TxEventObserver *Observer = nullptr;
  StartGate *Gate = nullptr;
  ContentionManager *Cm = nullptr;
  TxAccessObserver *AccessObs = nullptr;
};

/// Per-thread sharded transaction descriptor: TL2 lazy (commit-time)
/// conflict detection over the partitioned orec space. Reused across
/// transactions; not thread-safe — one descriptor per worker thread. The
/// retry loop (`run`) comes from the shared engine-family executor.
///
/// Only lazy detection is offered: encounter-time acquisition would take
/// stripes in access order, which is incompatible with the ordered
/// (shard, stripe) prepare that makes cross-shard waiting deadlock-free.
class ShardedTxn : public TxnExecutor<ShardedTxn> {
public:
  ShardedTxn(ShardedStm &Stm, ThreadId Thread);

  ShardedTxn(const ShardedTxn &) = delete;
  ShardedTxn &operator=(const ShardedTxn &) = delete;

  /// Transactional read of a raw 64-bit word.
  uint64_t loadWord(const std::atomic<uint64_t> &Word);

  /// Transactional (buffered) write of a raw 64-bit word.
  void storeWord(std::atomic<uint64_t> &Word, uint64_t Value);

  /// Typed transactional read of a TVar.
  template <typename T> T load(const TVar<T> &Var) {
    return TVar<T>::decode(loadWord(Var.word()));
  }

  /// Typed transactional write of a TVar. The value type is non-deduced
  /// so integer literals convert to the variable's type.
  template <typename T>
  void store(TVar<T> &Var, std::type_identity_t<T> Value) {
    storeWord(Var.word(), TVar<T>::encode(Value));
  }

  /// Explicitly aborts and retries the current transaction attempt.
  [[noreturn]] void retryAbort();

  ThreadId threadId() const { return Thread; }
  TxId txId() const { return CurrentTx; }

  /// Read version of the attempt in flight (exposed for tests).
  uint64_t readVersion() const { return Rv; }
  size_t readSetSize() const { return ReadSet.size(); }
  size_t writeSetSize() const { return WriteLog.size(); }
  /// Shards the attempt has read from / buffered writes to so far
  /// (bitmasks; the write mask is only complete once commit classified
  /// the write set). Exposed for tests and the steering hook.
  uint64_t readShardMask() const { return ReadShardMask; }
  uint64_t writeShardMask() const { return WriteShardMask; }
  /// True while the descriptor samples rv from the global clock instead
  /// of its home shard's applied clock (exposed for tests).
  bool usesGlobalRv() const { return UseGlobalRv; }

  /// Steering affinity hint: the workload-level group (e.g. key
  /// partition) the *next* transactions operate on; recorded with each
  /// commit so the steering learner can attribute cross-shard traffic to
  /// a placeable unit. Sticky until changed; NoAffinity disables.
  static constexpr uint32_t NoAffinity = ~uint32_t{0};
  void setAffinityGroup(uint32_t Group) { AffinityGroup = Group; }
  uint32_t affinityGroup() const { return AffinityGroup; }

  /// Commit notification hook for the steering learner (shard/Steering.h):
  /// receives (affinity group, touched-shard mask, cross-shard?) after
  /// every writer commit. Per-descriptor, so only the steered workloads
  /// pay the branch.
  class CommitListener {
  public:
    virtual ~CommitListener() = default;
    virtual void onShardCommit(ThreadId Thread, uint32_t Group,
                               uint64_t ShardMask, bool CrossShard) = 0;
  };
  void setCommitListener(CommitListener *L) { Listener = L; }

private:
  friend class TxnExecutor<ShardedTxn>;

  struct ReadEntry {
    const std::atomic<uint64_t> *Stripe;
    uint32_t Shard;
  };
  struct WriteEntry {
    std::atomic<uint64_t> *Addr;
    uint64_t Value;
  };
  struct AcquiredLock {
    // stm-order: publish(Stripe) requires release-fence-before
    std::atomic<uint64_t> *Stripe;
    uint64_t Key; ///< (shard << ShardKeyShift) | stripe index
    uint64_t PreviousWord;
  };

  /// Executor contract (engine/TxnExecutor.h).
  ShardedStm &stm() { return S; }
  StatsShard *shard() { return ThreadShard; }

  void begin(TxId Tx);
  /// Commits the attempt or reports the abort cause and throws. One code
  /// path serves both classes: a single-shard write set degenerates to
  /// the home shard's unchanged TL2 commit (one prepare group, no
  /// waiting), a cross-shard one runs the ordered-prepare /
  /// coordinated-publish 2PC.
  void commitOrThrow(uint32_t PriorAborts);
  void validateReadSet(TxThreadPair Self);

  [[noreturn]] void abortOnOwner(TxThreadPair Owner, AbortSite Site);
  [[noreturn]] void abortOnVersion(uint64_t Version, size_t Shard,
                                   AbortSite Site);
  [[noreturn]] void reportAbortAndThrow(const AbortEvent &E);

  uint64_t opensCount() const { return ReadSet.size() + WriteLog.size(); }

  void releaseAcquiredLocks();
  /// Pre-lock word of a stripe this commit locked itself (must be in
  /// Acquired; linear scan — only the suspicious slow pass pays it).
  uint64_t preLockWordFor(const std::atomic<uint64_t> *Stripe) const;

  bool lookupWriteSet(const std::atomic<uint64_t> *Addr, uint64_t &Value);

  /// Stats group the attempt's outcome is recorded into: the lowest
  /// touched shard (writes beat reads), or the thread's resident shard
  /// when nothing was touched — so per-shard-context stats are keyed by
  /// the data the transaction committed against.
  StatsShard &outcomeStats() const;

  static uint64_t filterSignature(const void *Addr) {
    auto Key = reinterpret_cast<uintptr_t>(Addr) >> 3;
    return uint64_t{1} << ((Key * 0x9e3779b97f4a7c15ULL) >> 58);
  }

  ShardedStm &S;
  ThreadId Thread;
  /// Thread's resident shard (Thread mod ShardCount): rv sampling source
  /// and the fallback stats home.
  size_t ResidentShard;
  /// This thread's stats shard in the resident context, for the
  /// executor's attempt-latency recording.
  StatsShard *ThreadShard;
  CommitListener *Listener = nullptr;
  TxId CurrentTx = 0;
  uint64_t Rv = 0;
  /// Sticky escalation: sample rv from the global clock instead of the
  /// resident shard's applied clock. Set when a version abort shows the
  /// applied-clock snapshot lagging the data the workload actually
  /// touches (otherwise a reader of a busier foreign shard would abort
  /// on version forever); cleared when a commit's touched-shard mask was
  /// resident-only, i.e. the lag cannot recur.
  bool UseGlobalRv = false;
  uint32_t AffinityGroup = NoAffinity;
  uint64_t ReadShardMask = 0;
  uint64_t WriteShardMask = 0;

  MiniVector<ReadEntry, 64> ReadSet;
  MiniVector<WriteEntry, 32> WriteLog;
  PtrIndexMap<uint32_t, 5> WriteIndex;
  uint64_t WriteFilter = 0;
  MiniVector<uint64_t, 32> StripeScratch;
  MiniVector<AcquiredLock, 32> Acquired;
};

} // namespace gstm

#endif // GSTM_SHARD_SHARDED_H
