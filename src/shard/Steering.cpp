//===- shard/Steering.cpp - Model-steered home-shard placement ------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "shard/Steering.h"

#include <algorithm>
#include <bit>
#include <cassert>

using namespace gstm;

ShardSteering::ShardSteering(unsigned Threads, unsigned Shards,
                             const SteeringConfig &Config)
    : Cfg(Config), ShardCount(Shards), Lanes(Threads) {
  assert(Shards >= 1 && Shards <= MaxShardCount);
  for (Lane &L : Lanes)
    L.Slots.resize(Cfg.RingCapacity);
}

void ShardSteering::registerGroup(uint32_t Group, const void *Begin,
                                  const void *End) {
  assert(Begin < End && "empty group range");
  GroupInfo &G = Groups[Group];
  G.Begin = reinterpret_cast<uintptr_t>(Begin);
  G.End = reinterpret_cast<uintptr_t>(End);
}

void ShardSteering::onShardCommit(ThreadId Thread, uint32_t Group,
                                  uint64_t ShardMask, bool CrossShard) {
  (void)CrossShard; // derivable from the mask; not buffered
  if (Group == ShardedTxn::NoAffinity)
    return;
  Lane &L = Lanes[static_cast<size_t>(Thread)];
  L.Observed.store(L.Observed.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  uint64_t Head = L.Head.load(std::memory_order_relaxed);
  uint64_t Tail = L.Tail.load(std::memory_order_acquire);
  if (Head - Tail >= L.Slots.size()) {
    L.Dropped.store(L.Dropped.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
    return;
  }
  L.Slots[Head % L.Slots.size()] = Event{Group, ShardMask};
  L.Head.store(Head + 1, std::memory_order_release);
}

size_t ShardSteering::drain() {
  size_t Consumed = 0;
  for (Lane &L : Lanes) {
    uint64_t Tail = L.Tail.load(std::memory_order_relaxed);
    uint64_t Head = L.Head.load(std::memory_order_acquire);
    for (; Tail != Head; ++Tail) {
      const Event &E = L.Slots[Tail % L.Slots.size()];
      GroupInfo &G = Groups[E.Group];
      G.Traffic += 1.0;
      uint64_t Mask = E.ShardMask;
      if (std::popcount(Mask) > 1) {
        G.Cross += 1.0;
        ++CrossDrained;
      }
      while (Mask) {
        unsigned Shard = static_cast<unsigned>(std::countr_zero(Mask));
        if (Shard < MaxShardCount)
          G.PerShard[Shard] += 1.0;
        Mask &= Mask - 1;
      }
      ++Consumed;
    }
    L.Tail.store(Tail, std::memory_order_release);
  }
  DrainedCount += Consumed;
  return Consumed;
}

void ShardSteering::decay() {
  for (auto &[Group, G] : Groups) {
    G.Traffic *= Cfg.DecayFactor;
    G.Cross *= Cfg.DecayFactor;
    for (double &W : G.PerShard)
      W *= Cfg.DecayFactor;
  }
}

ShardPlacement ShardSteering::buildPlacement() const {
  // Collect the placeable groups: registered range, observed traffic.
  std::vector<const GroupInfo *> Placeable;
  double Total = 0;
  for (const auto &[Group, G] : Groups) {
    if (G.End <= G.Begin || G.Traffic <= 0)
      continue;
    Placeable.push_back(&G);
    Total += G.Traffic;
  }
  std::sort(Placeable.begin(), Placeable.end(),
            [](const GroupInfo *A, const GroupInfo *B) {
              return A->Traffic > B->Traffic;
            });

  // Heaviest groups first, each to its highest-affinity shard; once a
  // shard's assigned traffic exceeds the slacked fair share, further
  // groups overflow to the least-loaded shard so one hot shard cannot
  // absorb the whole working set.
  const double LoadLimit =
      ShardCount ? Cfg.BalanceSlack * Total / ShardCount : 0;
  std::vector<double> Load(ShardCount, 0.0);
  ShardPlacement Placement;
  for (const GroupInfo *G : Placeable) {
    unsigned Best = 0;
    double BestAffinity = -1.0;
    unsigned Lightest = 0;
    for (unsigned S = 0; S < ShardCount; ++S) {
      if (G->PerShard[S] > BestAffinity && Load[S] < LoadLimit) {
        BestAffinity = G->PerShard[S];
        Best = S;
      }
      if (Load[S] < Load[Lightest])
        Lightest = S;
    }
    unsigned Target = BestAffinity >= 0 ? Best : Lightest;
    Load[Target] += G->Traffic;
    Placement.addRange(reinterpret_cast<const void *>(G->Begin),
                       reinterpret_cast<const void *>(G->End), Target);
  }
  Placement.finalize();
  return Placement;
}

SteeringStats ShardSteering::stats() const {
  SteeringStats Out;
  for (const Lane &L : Lanes) {
    Out.Observed += L.Observed.load(std::memory_order_relaxed);
    Out.Dropped += L.Dropped.load(std::memory_order_relaxed);
  }
  Out.Drained = DrainedCount;
  Out.CrossShardDrained = CrossDrained;
  Out.Groups = Groups.size();
  return Out;
}
