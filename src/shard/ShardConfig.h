//===- shard/ShardConfig.h - Sharded STM tier configuration --------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the sharded STM tier (shard/Sharded.h): how many
/// shard contexts partition the orec/version space, how addresses map to
/// their home shard, and whether model-steered placement is armed. The
/// shape deliberately mirrors Tl2Config so existing harness code can
/// treat a ShardedStm like one more runtime configuration.
///
/// shardConfigCanonical() renders the knobs that change transactional
/// behavior into the canonical `key=value;` string ModelStore hashes into
/// ModelKey::ConfigHash — a sharded and an unsharded model of the same
/// workload must never collide in the store (see tools/model_ctl.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SHARD_SHARDCONFIG_H
#define GSTM_SHARD_SHARDCONFIG_H

#include "engine/TxnExecutor.h"
#include "stm/LockTable.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace gstm {

/// Upper bound on shard contexts per runtime: participation masks are one
/// 64-bit word, mirroring the StatsShardCount sizing.
inline constexpr unsigned MaxShardCount = 64;

/// How a word address maps to its home shard (the shard whose LockTable,
/// CommitRing and applied clock govern it).
enum class ShardHashKind : uint8_t {
  /// Murmur3-style avalanche finalizer, shard index from the top bits —
  /// statistically independent of the per-shard stripe hash, which takes
  /// the low bits of its own mix.
  Mix,
  /// Single Fibonacci multiply. Cheaper, but allocation-correlated
  /// addresses clump; kept for A/B comparisons like StripeHashKind.
  Fibonacci,
};

/// Stable names ("mix" / "fib") for canonical strings and CLI flags.
const char *shardHashName(ShardHashKind Kind);
/// Inverse of shardHashName; returns false for unknown names.
bool shardHashFromName(const std::string &Name, ShardHashKind &Out);

/// Deliberately broken sharded-commit behavior for the correctness
/// harness's mutation self-test (check/ShardFuzz.h): tears the
/// coordinated cross-shard publish so the opacity checker can prove it
/// flags the resulting executions. Never enable outside the self-test.
struct ShardFaultInjection {
  /// Publish the first participating shard's stripe versions at wv
  /// *before* the coordinated write-back, with a yield in between:
  /// readers on that shard can validate new-version stripes while still
  /// observing pre-commit data on every shard.
  bool TornCoordinatedPublish = false;
};

/// Construction-time configuration of a ShardedStm runtime.
struct ShardConfig {
  /// Shard contexts partitioning the orec/version space. Power of two in
  /// [1, MaxShardCount]; 1 degenerates to an unsharded TL2 with the
  /// sharded tier's bookkeeping.
  unsigned ShardCount = 4;
  /// Address -> home-shard hash.
  ShardHashKind ShardHash = ShardHashKind::Mix;
  /// Model-steered home-shard placement armed (shard/Steering.h). The
  /// flag is part of the canonical config string: steered and unsteered
  /// models of the same workload are distinct keys.
  bool Steering = false;
  /// Per-shard lock-table stripes (2^Bits each). Two bits below the Tl2
  /// default: the table is per shard, so total stripe count scales with
  /// ShardCount.
  unsigned LockTableBits = 18;
  /// Per-shard commit-ring slots (2^Bits each).
  unsigned CommitRingBits = 13;
  /// Per-shard stripe hash (LockTable's address-to-stripe mapping).
  StripeHashKind StripeHash = StripeHashKind::Mix;
  /// Single-fence commit ordering, exactly as Tl2Config::SingleFenceCommit:
  /// validate, write back, then advance and publish every participating
  /// shard's stripe versions with relaxed stores behind one release
  /// fence. Ignored (standard ordering) when Fault.TornCoordinatedPublish
  /// needs the legacy publish path.
  bool SingleFenceCommit = true;
  /// Bounded spin on a locked stripe during cross-shard prepare before
  /// the attempt gives up and aborts. Ordered (shard, stripe) acquisition
  /// makes the waiting deadlock-free; the bound keeps a descheduled lock
  /// holder from stalling the prepare indefinitely. Each spin iteration
  /// counts into StatsShard::PrepareRetries.
  unsigned PrepareSpinLimit = 64;
  BackoffKind Backoff = BackoffKind::Yield;
  /// Scheduler perturbation, as Tl2Config::PreemptShift. 0 = off.
  unsigned PreemptShift = 0;
  /// Per-attempt wall-clock latency accumulation, as Tl2Config.
  bool TrackAttemptLatency = false;
  /// Fault injection for the checker self-test; all off by default.
  ShardFaultInjection Fault;
};

/// Canonical `key=value;` rendering of the knobs that select distinct
/// model keys: shard count, address->shard hash kind, and steering.
/// Appended to a workload's existing canonical config string before
/// ModelStore::hashConfigString (see tools/model_ctl.cpp keyFor).
std::string shardConfigCanonical(const ShardConfig &Cfg);

} // namespace gstm

#endif // GSTM_SHARD_SHARDCONFIG_H
