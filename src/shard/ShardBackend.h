//===- shard/ShardBackend.h - tmds backend traits for the sharded tier ---===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backend traits (tmds/TmBackend.h contract) plugging the sharded tier
/// into the template-based transactional containers and the OLTP bench:
/// cells are TVar<T> exactly as on TL2 — the partitioning is entirely a
/// property of the runtime's metadata, not of the data layout — so
/// cellAddr/cellRaw report the same encoding and one container source
/// runs sharded unchanged. Only the per-cell residue probe differs: the
/// stripe guarding a cell lives in its *home shard's* lock table.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SHARD_SHARDBACKEND_H
#define GSTM_SHARD_SHARDBACKEND_H

#include "shard/Sharded.h"
#include "stm/TVar.h"

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace gstm {

/// Word-based sharded backend: TVar cells over the partitioned orec
/// space.
struct ShardBackend {
  using Stm = ShardedStm;
  using Txn = ShardedTxn;
  template <typename T> using Cell = TVar<T>;

  static constexpr const char *Name = "sharded";

  template <typename T> static T load(Txn &Tx, const Cell<T> &C) {
    return Tx.load(C);
  }
  template <typename T>
  static void store(Txn &Tx, Cell<T> &C, std::type_identity_t<T> Value) {
    Tx.store(C, Value);
  }
  template <typename T> static T loadDirect(const Cell<T> &C) {
    return C.loadDirect();
  }
  template <typename T>
  static void storeDirect(Cell<T> &C, std::type_identity_t<T> Value) {
    C.storeDirect(Value);
  }

  /// Address / raw value as seen by TxAccessObserver callbacks.
  template <typename T> static const void *cellAddr(const Cell<T> &C) {
    return &C.word();
  }
  template <typename T> static uint64_t cellRaw(const Cell<T> &C) {
    return C.word().load(std::memory_order_relaxed);
  }

  /// True when the home-shard stripe guarding \p C is still locked
  /// (post-run residue probe; quiescent use only).
  template <typename T> static bool cellLocked(Stm &S, const Cell<T> &C) {
    auto &Word = const_cast<Cell<T> &>(C).word();
    return LockTable::decode(S.lockTableOf(S.shardFor(&Word))
                                 .stripeFor(&Word)
                                 .load(std::memory_order_relaxed))
        .Locked;
  }
};

} // namespace gstm

#endif // GSTM_SHARD_SHARDBACKEND_H
