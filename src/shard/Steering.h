//===- shard/Steering.h - Model-steered home-shard placement -------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The home-shard placement pass of the sharded tier: learn, from the
/// guided run's own commit stream, which workload-level *groups* (key
/// partitions, table fragments — whatever the workload declares as a
/// placeable unit) drag transactions across shard boundaries, and emit a
/// ShardPlacement that re-homes each group's address range onto the shard
/// it conflicts with least.
///
/// The ingest side reuses the OnlineLearner discipline verbatim (see
/// model/OnlineLearner.h): the committing worker appends a (group,
/// touched-shard mask) event to a per-thread SPSC ring — wait-free, no
/// shared producer cache line, full ring drops and counts. A control
/// thread drain()s the rings into per-group traffic/affinity accumulators
/// aged by decay() (exponential forgetting, so the placement tracks a
/// drifting workload just like the TSA edge weights), and
/// buildPlacement() compiles them into the next placement map.
///
/// The loop closes at *quiescent points only*: run a learning window,
/// drain, build, install via ShardedStm::setPlacement between windows —
/// never mid-run, because re-homing an address moves which orec partition
/// owns it (ShardPlacement doc). The steering objective is the
/// CrossShardCommits counter: EXPERIMENTS.md's `shards` axis shows the
/// cross-shard commit ratio dropping once the learned placement replaces
/// the scatter hash.
///
//===----------------------------------------------------------------------===//

#ifndef GSTM_SHARD_STEERING_H
#define GSTM_SHARD_STEERING_H

#include "shard/Sharded.h"

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace gstm {

/// Tunables of the steering learner.
struct SteeringConfig {
  /// Slots per per-thread ingest ring; a full ring drops (and counts).
  size_t RingCapacity = 4096;
  /// Multiplier applied to every accumulator per decay() epoch, in
  /// (0, 1]; 1.0 disables forgetting.
  double DecayFactor = 0.9;
  /// Load-balance slack of the greedy placement: a shard may carry up to
  /// Slack * (total traffic / shard count) before the builder diverts
  /// further groups to the least-loaded shard.
  double BalanceSlack = 1.25;
};

/// Counters describing steering activity. Exact only when workers have
/// quiesced.
struct SteeringStats {
  /// Events offered by commit paths (commits carrying an affinity group).
  uint64_t Observed = 0;
  /// Events rejected because a ring was full.
  uint64_t Dropped = 0;
  /// Events consumed by drain() so far.
  uint64_t Drained = 0;
  /// Drained events whose touched-shard mask spanned >= 2 shards.
  uint64_t CrossShardDrained = 0;
  /// Groups with accumulated telemetry.
  uint64_t Groups = 0;
};

/// Cross-shard conflict learner and placement builder.
///
/// Concurrency contract: onShardCommit() is called concurrently by worker
/// threads, each writing only its own lane. registerGroup(), drain(),
/// decay(), buildPlacement() and stats() must be called from one control
/// thread.
class ShardSteering : public ShardedTxn::CommitListener {
public:
  /// \p Threads lanes are allocated up front; ThreadIds seen by
  /// onShardCommit must be < Threads. \p Shards is the runtime's shard
  /// count (placement targets).
  ShardSteering(unsigned Threads, unsigned Shards,
                const SteeringConfig &Config = SteeringConfig());

  /// Declares group \p Group's address range [Begin, End): the placeable
  /// unit the builder may re-home. Telemetry for unregistered groups
  /// still accumulates but yields no placement range.
  void registerGroup(uint32_t Group, const void *Begin, const void *End);

  // ShardedTxn::CommitListener: wait-free append to the caller's lane.
  void onShardCommit(ThreadId Thread, uint32_t Group, uint64_t ShardMask,
                     bool CrossShard) override;

  /// Consumes every buffered event into the per-group accumulators.
  /// Returns the number of events consumed.
  size_t drain();

  /// One exponential-forgetting epoch over all accumulators.
  void decay();

  /// Greedy balanced placement from the drained telemetry: groups in
  /// descending traffic order each go to their highest-affinity shard
  /// (the shard their commits already touch most), overflowing to the
  /// least-loaded shard once a target exceeds the balance slack. The
  /// returned map is finalized and ready for ShardedStm::setPlacement —
  /// which the caller must only do at a quiescent point.
  ShardPlacement buildPlacement() const;

  SteeringStats stats() const;

private:
  struct Event {
    uint32_t Group;
    uint64_t ShardMask;
  };

  /// One SPSC lane; same layout and ownership split as the
  /// OnlineLearner rings (Head: owning worker, Tail: drainer).
  struct alignas(64) Lane {
    std::vector<Event> Slots;
    std::atomic<uint64_t> Head{0};
    std::atomic<uint64_t> Tail{0};
    std::atomic<uint64_t> Dropped{0};
    std::atomic<uint64_t> Observed{0};
  };

  struct GroupInfo {
    uintptr_t Begin = 0;
    uintptr_t End = 0;
    /// EWMA-aged commit count of the group.
    double Traffic = 0;
    /// ... the cross-shard subset.
    double Cross = 0;
    /// ... split by touched shard (affinity signal).
    double PerShard[MaxShardCount] = {};
  };

  SteeringConfig Cfg;
  unsigned ShardCount;
  std::vector<Lane> Lanes;

  // Accumulator state (control-thread only).
  std::unordered_map<uint32_t, GroupInfo> Groups;
  uint64_t DrainedCount = 0;
  uint64_t CrossDrained = 0;
};

} // namespace gstm

#endif // GSTM_SHARD_STEERING_H
