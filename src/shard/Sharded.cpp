//===- shard/Sharded.cpp - Sharded TL2 tier implementation ----------------===//
//
// Part of the GSTM reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (CGO 2019).
//
//===----------------------------------------------------------------------===//

#include "shard/Sharded.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <thread>

using namespace gstm;

const char *gstm::shardHashName(ShardHashKind Kind) {
  return Kind == ShardHashKind::Mix ? "mix" : "fib";
}

bool gstm::shardHashFromName(const std::string &Name, ShardHashKind &Out) {
  if (Name == "mix") {
    Out = ShardHashKind::Mix;
    return true;
  }
  if (Name == "fib") {
    Out = ShardHashKind::Fibonacci;
    return true;
  }
  return false;
}

std::string gstm::shardConfigCanonical(const ShardConfig &Cfg) {
  std::string S = "shards=" + std::to_string(Cfg.ShardCount) + ";";
  S += "shard-hash=";
  S += shardHashName(Cfg.ShardHash);
  S += ";steer=";
  S += Cfg.Steering ? '1' : '0';
  S += ';';
  return S;
}

void ShardPlacement::addRange(const void *Begin, const void *End,
                              unsigned Shard) {
  assert(Begin < End && "empty placement range");
  Ranges.push_back(Range{reinterpret_cast<uintptr_t>(Begin),
                         reinterpret_cast<uintptr_t>(End), Shard});
  Finalized = false;
}

void ShardPlacement::finalize() {
  std::sort(Ranges.begin(), Ranges.end(),
            [](const Range &A, const Range &B) { return A.Begin < B.Begin; });
  for (size_t I = 1; I < Ranges.size(); ++I)
    assert(Ranges[I - 1].End <= Ranges[I].Begin &&
           "overlapping placement ranges");
  Finalized = true;
}

int ShardPlacement::lookup(const void *Addr) const {
  assert(Finalized && "lookup on an unfinalized placement");
  uintptr_t A = reinterpret_cast<uintptr_t>(Addr);
  auto It = std::upper_bound(
      Ranges.begin(), Ranges.end(), A,
      [](uintptr_t Key, const Range &R) { return Key < R.Begin; });
  if (It == Ranges.begin())
    return -1;
  --It;
  return A < It->End ? static_cast<int>(It->Shard) : -1;
}

ShardedStm::ShardedStm(const ShardConfig &Config) : Cfg(Config) {
  assert(Cfg.ShardCount >= 1 && Cfg.ShardCount <= MaxShardCount &&
         (Cfg.ShardCount & (Cfg.ShardCount - 1)) == 0 &&
         "shard count must be a power of two in [1, 64]");
  Shards.reserve(Cfg.ShardCount);
  for (unsigned I = 0; I < Cfg.ShardCount; ++I)
    Shards.push_back(std::make_unique<ShardContext>(Cfg));
}

size_t ShardedStm::shardFor(const void *Addr) const {
  if (const ShardPlacement *P = Placement.load(std::memory_order_acquire)) {
    int Explicit = P->lookup(Addr);
    if (Explicit >= 0)
      return static_cast<size_t>(Explicit);
  }
  uint64_t Key = reinterpret_cast<uintptr_t>(Addr) >> 3;
  if (Cfg.ShardHash == ShardHashKind::Mix) {
    // Same avalanche finalizer as LockTable's Mix hash, but the shard
    // index comes from the top bits while stripe indexes take the low
    // bits — the two mappings stay statistically independent.
    Key ^= Key >> 33;
    Key *= 0xff51afd7ed558ccdULL;
    Key ^= Key >> 29;
    Key *= 0xc4ceb9fe1a85ec53ULL;
    Key ^= Key >> 32;
    return static_cast<size_t>(Key >> 58) & (Cfg.ShardCount - 1);
  }
  return static_cast<size_t>(Key * 0x9e3779b97f4a7c15ULL >> 58) &
         (Cfg.ShardCount - 1);
}

StatsSnapshot ShardedStatsView::aggregate() const {
  StatsSnapshot Total;
  for (unsigned I = 0; I < S->shardCount(); ++I)
    Total.merge(S->shardStats(I).aggregate());
  return Total;
}

uint64_t ShardedStatsView::commits() const { return aggregate().Commits; }

uint64_t ShardedStatsView::aborts() const { return aggregate().Aborts; }

void ShardedStatsView::reset() {
  for (unsigned I = 0; I < S->shardCount(); ++I)
    S->shardStats(I).reset();
}

ShardedTxn::ShardedTxn(ShardedStm &Stm, ThreadId Thread)
    : TxnExecutor<ShardedTxn>(Thread), S(Stm), Thread(Thread),
      ResidentShard(static_cast<size_t>(Thread) % Stm.shardCount()),
      ThreadShard(&Stm.shardStats(ResidentShard).shard(Thread)) {}

StatsShard &ShardedTxn::outcomeStats() const {
  uint64_t Mask = WriteShardMask ? WriteShardMask : ReadShardMask;
  size_t Shard =
      Mask ? static_cast<size_t>(std::countr_zero(Mask)) : ResidentShard;
  return S.shardStats(Shard).shard(Thread);
}

void ShardedTxn::begin(TxId Tx) {
  CurrentTx = Tx;
  // rv source: the resident shard's applied clock by default (no
  // globally shared line on the begin path of a shard-partitioned
  // workload), the global clock once a version abort proved the applied
  // snapshot lags the data this descriptor actually reads. Both are
  // sound; see the file comment in Sharded.h for the happens-before
  // argument covering the lagging sample.
  Rv = UseGlobalRv ? S.clock().sample()
                   : S.appliedClockOf(ResidentShard).sample();
  ReadSet.clear();
  WriteLog.clear();
  WriteIndex.clear();
  WriteFilter = 0;
  StripeScratch.clear();
  Acquired.clear();
  ReadShardMask = 0;
  WriteShardMask = 0;
  if (TxAccessObserver *A = S.accessObserver())
    A->onTxBegin(Thread, Tx, Rv);
}

bool ShardedTxn::lookupWriteSet(const std::atomic<uint64_t> *Addr,
                                uint64_t &Value) {
  if ((WriteFilter & filterSignature(Addr)) == 0)
    return false;
  const uint32_t *Pos = WriteIndex.find(Addr);
  if (!Pos)
    return false;
  Value = WriteLog[*Pos].Value;
  return true;
}

uint64_t ShardedTxn::loadWord(const std::atomic<uint64_t> &Word) {
  maybePreempt();
  // Read-after-write: serve buffered values from the write set.
  uint64_t Buffered;
  if (lookupWriteSet(&Word, Buffered)) {
    if (TxAccessObserver *A = S.accessObserver())
      A->onTxLoad(Thread, &Word, Buffered, /*Version=*/0,
                  /*Buffered=*/true);
    return Buffered;
  }

  size_t Shard = S.shardFor(&Word);
  ReadShardMask |= uint64_t{1} << Shard;
  std::atomic<uint64_t> &Stripe = S.lockTableOf(Shard).stripeFor(&Word);
  uint64_t Pre = Stripe.load(std::memory_order_acquire);
  StripeState PreState = LockTable::decode(Pre);
  // The tier is lazy-only, so a locked stripe is always someone else's
  // in-flight commit: this descriptor only holds stripes inside
  // commitOrThrow, after its body finished loading.
  if (PreState.Locked)
    abortOnOwner(PreState.Owner, AbortSite::Read);

  uint64_t Value = Word.load(std::memory_order_acquire);

  uint64_t Post = Stripe.load(std::memory_order_acquire);
  if (Post != Pre) {
    StripeState PostState = LockTable::decode(Post);
    if (PostState.Locked)
      abortOnOwner(PostState.Owner, AbortSite::Read);
    abortOnVersion(PostState.Version, Shard, AbortSite::Read);
  }
  if (PreState.Version > Rv)
    abortOnVersion(PreState.Version, Shard, AbortSite::Read);

  ReadSet.push_back(ReadEntry{&Stripe, static_cast<uint32_t>(Shard)});
  if (TxAccessObserver *A = S.accessObserver())
    A->onTxLoad(Thread, &Word, Value, PreState.Version,
                /*Buffered=*/false);
  return Value;
}

void ShardedTxn::storeWord(std::atomic<uint64_t> &Word, uint64_t Value) {
  maybePreempt();
  if (TxAccessObserver *A = S.accessObserver())
    A->onTxStore(Thread, &Word, Value);
  uint64_t Sig = filterSignature(&Word);
  if ((WriteFilter & Sig) != 0) {
    if (const uint32_t *Pos = WriteIndex.find(&Word)) {
      WriteLog[*Pos].Value = Value;
      return;
    }
  }
  WriteFilter |= Sig;
  WriteIndex.insert(&Word, static_cast<uint32_t>(WriteLog.size()));
  WriteLog.push_back(WriteEntry{&Word, Value});
}

void ShardedTxn::commitOrThrow(uint32_t PriorAborts) {
  TxThreadPair Self = packPair(CurrentTx, Thread);

  // Read-only transactions: every read was validated against rv when it
  // happened, so the snapshot is consistent and no locks are needed —
  // even when the read set spans shards, because a reader never
  // publishes and therefore never needs the coordinated protocol.
  if (WriteLog.empty()) {
    outcomeStats().recordCommit(PriorAborts, /*ReadOnly=*/true);
    if ((ReadShardMask & ~(uint64_t{1} << ResidentShard)) == 0)
      UseGlobalRv = false;
    if (TxEventObserver *Obs = S.observer())
      Obs->onCommit(CommitEvent{Thread, CurrentTx, /*Version=*/0,
                                PriorAborts, /*ReadOnly=*/true});
    return;
  }

  // Classification: fold the write set into combined (shard, stripe)
  // keys, sorted and deduplicated. Sorting the combined keys yields the
  // global acquisition order — shards ascending, stripe index ascending
  // inside each shard — that both commit classes share; a single write
  // shard makes this exactly the home shard's TL2 commit.
  StripeScratch.clear();
  for (const WriteEntry &E : WriteLog) {
    size_t Shard = S.shardFor(E.Addr);
    WriteShardMask |= uint64_t{1} << Shard;
    StripeScratch.push_back(
        (static_cast<uint64_t>(Shard) << ShardedStm::ShardKeyShift) |
        static_cast<uint64_t>(S.lockTableOf(Shard).indexFor(E.Addr)));
  }
  std::sort(StripeScratch.begin(), StripeScratch.end());
  StripeScratch.truncate(static_cast<size_t>(
      std::unique(StripeScratch.begin(), StripeScratch.end()) -
      StripeScratch.begin()));
  const bool CrossShard = std::popcount(WriteShardMask) > 1;
  StatsShard &Outcome = outcomeStats();

  // Prepare: acquire every write stripe in the global order. A
  // single-shard commit aborts on a held stripe exactly like TL2; a
  // cross-shard prepare spins a bounded wait first — aborting a
  // multi-shard attempt forfeits more invested work, and because every
  // committer (waiting or not) acquires along the same total order, a
  // wait-for cycle would need some attempt to wait on a key below one
  // it holds, which never happens. The bound keeps a descheduled holder
  // from stalling the prepare; each iteration counts as a PrepareRetry.
  const unsigned SpinLimit = S.config().PrepareSpinLimit;
  constexpr uint64_t StripeMask =
      (uint64_t{1} << ShardedStm::ShardKeyShift) - 1;
  for (uint64_t Key : StripeScratch) {
    std::atomic<uint64_t> &Stripe =
        S.lockTableOf(Key >> ShardedStm::ShardKeyShift)
            .stripeAt(static_cast<size_t>(Key & StripeMask));
    unsigned Spins = 0;
    uint64_t Old = Stripe.load(std::memory_order_relaxed);
    for (;;) {
      StripeState OldState = LockTable::decode(Old);
      if (OldState.Locked) {
        if (!CrossShard || Spins >= SpinLimit)
          abortOnOwner(OldState.Owner, AbortSite::LockAcquire);
        ++Spins;
        Outcome.recordPrepareRetry();
        std::this_thread::yield();
        Old = Stripe.load(std::memory_order_relaxed);
        continue;
      }
      if (Stripe.compare_exchange_weak(Old, LockTable::encodeLocked(Self),
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed))
        break;
    }
    Acquired.push_back(AcquiredLock{&Stripe, Key, Old});
    if (TxAccessObserver *A = S.accessObserver())
      A->onLockAcquire(Thread, Key);
  }

  const ShardConfig &Cfg = S.config();
  // The torn-coordinated-publish mutant exercises the legacy publish
  // ordering, so it pins the standard path.
  const bool SingleFence =
      Cfg.SingleFenceCommit && !Cfg.Fault.TornCoordinatedPublish;

  uint64_t Wv;
  if (SingleFence) {
    // Single-fence commit, exactly as the Tl2 path hardened in PR 9:
    // validate, write the data back, then advance the clock and publish
    // every participating shard's stripe versions with relaxed stores
    // behind one release fence. Validation is UNCONDITIONAL (the
    // `wv == rv+1` elision is unsound with the advance after writeback,
    // and doubly so here where rv may be a lagging applied-clock
    // sample). The seq_cst fence below is what globally orders each
    // committer's prepare CASes before the other's validation loads;
    // without it two cyclically conflicting committers — on the same
    // shard or across shards — can each miss the other's freshly taken
    // locks and both commit a lost update.
    // stm-order: fence(seq_cst) before(validateReadSet) label(ShardedTxn::commitOrThrow cross-shard 2PC)
    std::atomic_thread_fence(std::memory_order_seq_cst);
    validateReadSet(Self);

    for (const WriteEntry &E : WriteLog)
      E.Addr->store(E.Value, std::memory_order_release);

    // One fence orders the coordinated write-back before every shard's
    // version publish: a reader whose acquire load of any participating
    // stripe observes one of the relaxed stores below synchronizes with
    // this fence ([atomics.fences]) and therefore sees the new data on
    // every shard the commit touched — the coordinated publish is
    // atomic to readers because all stripes stay locked until their own
    // publish store.
    std::atomic_thread_fence(std::memory_order_release);

    Wv = S.clock().advance();
    // Publish, shard groups ascending: attribution first (the shard's
    // commit queue), then its stripes at wv, then its applied clock —
    // which must only move after the publishes (Sharded.h file comment).
    for (size_t I = 0; I < Acquired.size();) {
      size_t Shard = Acquired[I].Key >> ShardedStm::ShardKeyShift;
      S.commitRingOf(Shard).record(Wv, Self);
      size_t J = I;
      for (; J < Acquired.size() &&
             (Acquired[J].Key >> ShardedStm::ShardKeyShift) == Shard;
           ++J)
        Acquired[J].Stripe->store(LockTable::encodeVersion(Wv),
                                  std::memory_order_relaxed);
      S.appliedClockOf(Shard).raiseTo(Wv);
      I = J;
    }
    Acquired.clear();
  } else {
    Wv = S.clock().advance();
    validateReadSet(Self);

    if (Cfg.Fault.TornCoordinatedPublish && CrossShard) {
      // Self-test mutant: tear the coordinated publish — release the
      // first participating shard's stripes at wv before any data moves,
      // with a yield to widen the window in which that shard's readers
      // validate new-version stripes while still observing pre-commit
      // data on every shard.
      size_t First = Acquired[0].Key >> ShardedStm::ShardKeyShift;
      S.commitRingOf(First).record(Wv, Self);
      size_t Torn = 0;
      for (; Torn < Acquired.size() &&
             (Acquired[Torn].Key >> ShardedStm::ShardKeyShift) == First;
           ++Torn)
        Acquired[Torn].Stripe->store(LockTable::encodeVersion(Wv),
                                     std::memory_order_release);
      std::this_thread::yield();
      for (const WriteEntry &E : WriteLog)
        E.Addr->store(E.Value, std::memory_order_release);
      for (size_t I = Torn; I < Acquired.size();) {
        size_t Shard = Acquired[I].Key >> ShardedStm::ShardKeyShift;
        S.commitRingOf(Shard).record(Wv, Self);
        size_t J = I;
        for (; J < Acquired.size() &&
               (Acquired[J].Key >> ShardedStm::ShardKeyShift) == Shard;
             ++J)
          Acquired[J].Stripe->store(LockTable::encodeVersion(Wv),
                                    std::memory_order_release);
        S.appliedClockOf(Shard).raiseTo(Wv);
        I = J;
      }
      S.appliedClockOf(First).raiseTo(Wv);
      Acquired.clear();
    } else {
      for (const WriteEntry &E : WriteLog)
        E.Addr->store(E.Value, std::memory_order_release);
      for (size_t I = 0; I < Acquired.size();) {
        size_t Shard = Acquired[I].Key >> ShardedStm::ShardKeyShift;
        S.commitRingOf(Shard).record(Wv, Self);
        size_t J = I;
        for (; J < Acquired.size() &&
               (Acquired[J].Key >> ShardedStm::ShardKeyShift) == Shard;
             ++J)
          Acquired[J].Stripe->store(LockTable::encodeVersion(Wv),
                                    std::memory_order_release);
        S.appliedClockOf(Shard).raiseTo(Wv);
        I = J;
      }
      Acquired.clear();
    }
  }

  Outcome.recordCommit(PriorAborts, /*ReadOnly=*/false);
  if (CrossShard)
    Outcome.recordCrossShardCommit();
  // De-escalate the rv source once a commit proves the descriptor's
  // traffic fits its resident shard again.
  if (((ReadShardMask | WriteShardMask) & ~(uint64_t{1} << ResidentShard)) ==
      0)
    UseGlobalRv = false;
  if (Listener)
    Listener->onShardCommit(Thread, AffinityGroup,
                            ReadShardMask | WriteShardMask, CrossShard);
  if (TxEventObserver *Obs = S.observer())
    Obs->onCommit(CommitEvent{Thread, CurrentTx, Wv, PriorAborts,
                              /*ReadOnly=*/false});
}

void ShardedTxn::validateReadSet(TxThreadPair Self) {
  // Fast pass: branch-free OR-reduction over the read set, exactly as
  // Tl2Txn::validateReadSet — suspicious iff locked (bit 0) or newer
  // than rv.
  const ReadEntry *Entries = ReadSet.data();
  const size_t N = ReadSet.size();
  const uint64_t Snapshot = Rv;
  uint64_t Suspicious = 0;
  for (size_t I = 0; I < N; ++I) {
    uint64_t W = Entries[I].Stripe->load(std::memory_order_acquire);
    Suspicious |= (W & 1) | static_cast<uint64_t>((W >> 1) > Snapshot);
  }
  if (Suspicious == 0)
    return;

  // Slow pass: re-walk with full attribution. Stripes this commit
  // locked itself (read-then-written locations) validate against the
  // pre-lock word; versions only grow, so re-reading stays sound.
  for (size_t I = 0; I < N; ++I) {
    const ReadEntry &E = Entries[I];
    uint64_t Word = E.Stripe->load(std::memory_order_acquire);
    StripeState State = LockTable::decode(Word);
    if (State.Locked) {
      if (State.Owner != Self)
        abortOnOwner(State.Owner, AbortSite::CommitValidate);
      uint64_t PreLock = preLockWordFor(E.Stripe);
      StripeState PreLockState = LockTable::decode(PreLock);
      if (PreLockState.Version > Rv)
        abortOnVersion(PreLockState.Version, E.Shard,
                       AbortSite::CommitValidate);
      continue;
    }
    if (State.Version > Rv)
      abortOnVersion(State.Version, E.Shard, AbortSite::CommitValidate);
  }
}

uint64_t
ShardedTxn::preLockWordFor(const std::atomic<uint64_t> *Stripe) const {
  // Linear scan: only the suspicious slow pass pays it, and write sets
  // are small. (Tl2 binary-searches, but its stripes live in one
  // contiguous table; pointers across shard tables do not sort by key.)
  for (const AcquiredLock &L : Acquired)
    if (L.Stripe == Stripe)
      return L.PreviousWord;
  assert(false && "self-locked stripe missing from the acquired list");
  return 0;
}

void ShardedTxn::releaseAcquiredLocks() {
  // Restore the pre-lock words so the stripes revert to their old
  // versions; nothing was written back yet.
  for (auto It = Acquired.rbegin(); It != Acquired.rend(); ++It)
    It->Stripe->store(It->PreviousWord, std::memory_order_release);
  Acquired.clear();
}

void ShardedTxn::abortOnOwner(TxThreadPair Owner, AbortSite Site) {
  reportAbortAndThrow(AbortEvent{Thread, CurrentTx,
                                 AbortCauseKind::KnownCommitter, Owner,
                                 /*CauseVersion=*/0, Site});
}

void ShardedTxn::abortOnVersion(uint64_t Version, size_t Shard,
                                AbortSite Site) {
  // A version abort means the rv snapshot trails this shard's commits.
  // When rv came from the resident shard's applied clock that lag can
  // be permanent (a busier foreign shard outruns the home clock
  // forever), so escalate the descriptor to global-clock sampling; a
  // later resident-only commit de-escalates.
  UseGlobalRv = true;
  TxThreadPair Committer;
  bool Hit = S.commitRingOf(Shard).lookup(Version, Committer);
  outcomeStats().recordCommitRingLookup(Hit);
  if (Hit)
    reportAbortAndThrow(AbortEvent{Thread, CurrentTx,
                                   AbortCauseKind::KnownCommitter, Committer,
                                   Version, Site});
  reportAbortAndThrow(AbortEvent{Thread, CurrentTx,
                                 AbortCauseKind::UnknownCommitter,
                                 /*Cause=*/0, Version, Site});
}

void ShardedTxn::retryAbort() {
  reportAbortAndThrow(AbortEvent{Thread, CurrentTx, AbortCauseKind::Explicit,
                                 /*Cause=*/0, /*CauseVersion=*/0,
                                 AbortSite::Explicit});
}

void ShardedTxn::reportAbortAndThrow(const AbortEvent &E) {
  LastOpens = opensCount();
  releaseAcquiredLocks();
  LastEnemyKnown = E.Kind == AbortCauseKind::KnownCommitter;
  LastEnemy = LastEnemyKnown ? E.Cause : 0;
  StatsShard &St = outcomeStats();
  St.recordAbort(E.Kind, E.Site);
  // Cross-shard abort accounting keys on the shards the attempt had
  // touched when it died (the write mask is only complete for
  // commit-time aborts; read-time aborts key on what was read so far).
  if (std::popcount(ReadShardMask | WriteShardMask) > 1)
    St.recordCrossShardAbort();
  if (TxEventObserver *Obs = S.observer())
    Obs->onAbort(E);
  throw TxAbortException{};
}
